// Property tests for the tnb::impair stage library and its build_trace
// integration (DESIGN.md section 15).
//
// The load-bearing property is the first one: a zero-severity chain must
// leave build_trace bit-identical to an unimpaired run — the CI
// decode-ab-diff gate relies on the default path never moving.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "core/receiver.hpp"
#include "impair/impairment.hpp"
#include "sim/metrics.hpp"
#include "sim/trace_builder.hpp"

namespace {

using namespace tnb;

lora::Params test_params(unsigned sf = 8, unsigned osf = 4) {
  return lora::Params{.sf = sf, .cr = 4, .bandwidth_hz = 125e3, .osf = osf};
}

IqBuffer random_iq(std::size_t n, Rng& rng, float amp = 1.0f) {
  IqBuffer buf(n);
  for (cfloat& v : buf) {
    v = cfloat(amp * static_cast<float>(rng.uniform(-1.0, 1.0)),
               amp * static_cast<float>(rng.uniform(-1.0, 1.0)));
  }
  return buf;
}

std::vector<sim::NodeConfig> test_nodes(std::size_t n, double snr_db) {
  std::vector<sim::NodeConfig> nodes(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes[i].id = static_cast<std::uint16_t>(i + 1);
    nodes[i].snr_db = snr_db;
    nodes[i].cfo_hz = 200.0 * static_cast<double>(i + 1);
  }
  return nodes;
}

sim::TraceOptions base_options(double duration_s = 1.0, double load = 6.0) {
  sim::TraceOptions opt;
  opt.duration_s = duration_s;
  opt.load_pps = load;
  opt.nodes = test_nodes(3, 15.0);
  return opt;
}

// A chain of zero-severity stages must not perturb the trace in any way:
// same samples bit for bit, same ground truth, zero RNG draws consumed by
// the pipeline.
TEST(Impairments, ZeroSeverityChainBitIdentical) {
  const lora::Params params = test_params();
  sim::TraceOptions opt = base_options();

  Rng rng_a(42);
  const sim::Trace plain = sim::build_trace(params, opt, rng_a);

  for (const char* spec :
       {"phase_noise,linewidth_hz=0", "iq_imbalance,gain_db=0,phase_deg=0",
        "quantize,bits=0", "clock_drift,ppm=0", "inter_sf,sf=10,pps=0",
        "doppler,hz=0"}) {
    opt.impairments.push_back(impair::parse_impairment(spec));
  }
  Rng rng_b(42);
  const sim::Trace zeroed = sim::build_trace(params, opt, rng_b);

  ASSERT_EQ(plain.iq.size(), zeroed.iq.size());
  EXPECT_TRUE(plain.iq == zeroed.iq);
  ASSERT_EQ(plain.packets.size(), zeroed.packets.size());
  for (std::size_t i = 0; i < plain.packets.size(); ++i) {
    EXPECT_EQ(plain.packets[i].start_sample, zeroed.packets[i].start_sample);
    EXPECT_EQ(plain.packets[i].app_payload, zeroed.packets[i].app_payload);
  }
  // And the two Rngs are in the same state afterwards.
  EXPECT_EQ(rng_a.uniform(), rng_b.uniform());

  impair::Pipeline pipeline(opt.impairments, params);
  EXPECT_TRUE(pipeline.empty());
}

// No traffic model set keeps the legacy even-split schedule bit-identical
// (the second half of the default-path guarantee).
TEST(Impairments, DefaultTraceUnchangedByUnsetTraffic) {
  const lora::Params params = test_params();
  sim::TraceOptions opt = base_options();
  Rng a(7), b(7);
  const sim::Trace t1 = sim::build_trace(params, opt, a);
  opt.traffic.reset();  // explicit no-op
  opt.impairments.clear();
  const sim::Trace t2 = sim::build_trace(params, opt, b);
  EXPECT_TRUE(t1.iq == t2.iq);
  EXPECT_EQ(t1.packets.size(), t2.packets.size());
}

TEST(Impairments, QuantizeIdempotent) {
  const lora::Params params = test_params();
  Rng rng(3);
  for (unsigned bits : {4u, 8u, 12u}) {
    impair::ImpairmentConfig cfg;
    cfg.kind = impair::Kind::kQuantize;
    cfg.bits = bits;
    const auto q = impair::make_impairment(cfg, params);
    IqBuffer buf = random_iq(4096, rng, 8.0f);
    q->process(buf, rng);
    IqBuffer once = buf;
    q->reset();
    q->process(buf, rng);
    EXPECT_TRUE(buf == once) << "bits=" << bits
                             << ": re-quantization moved samples";
  }
}

TEST(Impairments, QuantizeErrorMonotoneInBitDepth) {
  const lora::Params params = test_params();
  Rng rng(4);
  const IqBuffer clean = random_iq(8192, rng, 4.0f);
  double prev_err = std::numeric_limits<double>::infinity();
  for (unsigned bits : {4u, 6u, 8u, 10u, 12u, 14u}) {
    impair::ImpairmentConfig cfg;
    cfg.kind = impair::Kind::kQuantize;
    cfg.bits = bits;
    const auto q = impair::make_impairment(cfg, params);
    IqBuffer buf = clean;
    q->process(buf, rng);
    double err = 0.0;
    for (std::size_t i = 0; i < buf.size(); ++i) {
      err += std::norm(buf[i] - clean[i]);
    }
    EXPECT_LT(err, prev_err) << "bits=" << bits;
    EXPECT_EQ(q->clip_stats().clipped, 0u) << "bits=" << bits;
    prev_err = err;
  }
}

TEST(Impairments, QuantizeClipsAndCounts) {
  const lora::Params params = test_params();
  impair::ImpairmentConfig cfg;
  cfg.kind = impair::Kind::kQuantize;
  cfg.bits = 8;
  cfg.full_scale = 1.0;  // rails at +/-1: half the +/-2 inputs clip
  const auto q = impair::make_impairment(cfg, params);
  Rng rng(5);
  IqBuffer buf = random_iq(4096, rng, 2.0f);
  q->process(buf, rng);
  EXPECT_GT(q->clip_stats().clipped, 0u);
  EXPECT_EQ(q->clip_stats().total, 4096u);
  EXPECT_GT(q->clip_stats().rate(), 0.1);
  for (const cfloat& v : buf) {
    EXPECT_LE(std::abs(v.real()), 1.0f);
    EXPECT_LE(std::abs(v.imag()), 1.0f);
  }
}

// ppm=0 run through the resampler directly (a Pipeline would drop it as a
// no-op) must hand back every sample byte-exactly: the interpolator takes
// the exact pass-through branch whenever the fractional position is 0.
TEST(Impairments, ResamplerPpmZeroByteExact) {
  const lora::Params params = test_params();
  impair::ImpairmentConfig cfg;
  cfg.kind = impair::Kind::kClockDrift;
  cfg.ppm = 0.0;
  const auto rs = impair::make_impairment(cfg, params);
  Rng rng(6);
  const IqBuffer clean = random_iq(10000, rng);
  IqBuffer buf = clean;
  rs->process(buf, rng);
  IqBuffer tail;
  rs->flush(tail);
  buf.insert(buf.end(), tail.begin(), tail.end());
  ASSERT_EQ(buf.size(), clean.size());
  EXPECT_TRUE(buf == clean);
}

// The resampler changes the duration by the drift rate but the Pipeline
// trims/pads back to the trace length; standalone, the emitted count must
// track rate = 1 + ppm * 1e-6.
TEST(Impairments, ResamplerRateMatchesPpm) {
  const lora::Params params = test_params();
  Rng rng(7);
  const IqBuffer clean = random_iq(100000, rng);
  for (double ppm : {-200.0, 50.0, 200.0}) {
    impair::ImpairmentConfig cfg;
    cfg.kind = impair::Kind::kClockDrift;
    cfg.ppm = ppm;
    const auto rs = impair::make_impairment(cfg, params);
    IqBuffer buf = clean;
    rs->process(buf, rng);
    IqBuffer tail;
    rs->flush(tail);
    const double n_out = static_cast<double>(buf.size() + tail.size());
    const double expected =
        static_cast<double>(clean.size()) / (1.0 + ppm * 1e-6);
    EXPECT_NEAR(n_out, expected, 2.0) << "ppm=" << ppm;
  }
}

TEST(Impairments, PhaseNoisePreservesMagnitude) {
  const lora::Params params = test_params();
  impair::ImpairmentConfig cfg;
  cfg.kind = impair::Kind::kPhaseNoise;
  cfg.linewidth_hz = 1000.0;
  const auto pn = impair::make_impairment(cfg, params);
  Rng rng(8);
  const IqBuffer clean = random_iq(8192, rng);
  IqBuffer buf = clean;
  pn->reset();
  pn->process(buf, rng);
  ASSERT_EQ(buf.size(), clean.size());
  double max_rel = 0.0;
  bool moved = false;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    const double a = std::abs(std::complex<double>(clean[i]));
    const double b = std::abs(std::complex<double>(buf[i]));
    if (a > 1e-6) max_rel = std::max(max_rel, std::abs(b - a) / a);
    if (buf[i] != clean[i]) moved = true;
  }
  EXPECT_LT(max_rel, 1e-5);  // pure rotation, float rounding only
  EXPECT_TRUE(moved);        // but it did rotate
}

TEST(Impairments, IqImbalanceInverseRecoversInput) {
  const lora::Params params = test_params();
  impair::ImpairmentConfig cfg;
  cfg.kind = impair::Kind::kIqImbalance;
  cfg.gain_db = 1.5;
  cfg.phase_deg = 8.0;
  const auto iq = impair::make_impairment(cfg, params);
  Rng rng(9);
  const IqBuffer clean = random_iq(4096, rng);
  IqBuffer buf = clean;
  iq->process(buf, rng);
  double max_err = 0.0;
  bool moved = false;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    const cfloat back = impair::iq_imbalance_invert(cfg, buf[i]);
    max_err = std::max(max_err,
                       static_cast<double>(std::abs(back - clean[i])));
    if (buf[i] != clean[i]) moved = true;
  }
  EXPECT_LT(max_err, 1e-5);  // inverse within float rounding
  EXPECT_TRUE(moved);
  // mu/nu sanity: |mu| > |nu| for any in-validity config (invertible).
  const auto [mu, nu] = impair::iq_imbalance_coeffs(cfg);
  EXPECT_GT(std::abs(mu), std::abs(nu));
}

TEST(Impairments, DopplerDrawsFreshPhasePerPacket) {
  const lora::Params params = test_params();
  impair::ImpairmentConfig cfg;
  cfg.kind = impair::Kind::kDoppler;
  cfg.doppler_hz = 500.0;
  cfg.period_s = 1.0;
  const auto dp = impair::make_impairment(cfg, params);
  Rng rng(10);
  const IqBuffer clean = random_iq(2048, rng);
  IqBuffer a = clean, b = clean;
  dp->reset();
  dp->process(a, rng);
  dp->reset();
  dp->process(b, rng);
  // Independent initial phases: the two packets are rotated differently.
  EXPECT_FALSE(a == b);
  // Magnitude-preserving, like phase noise.
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::abs(a[i]), std::abs(clean[i]), 1e-5f * 4);
  }
}

TEST(Impairments, ParseAndValidateRejectBadSpecs) {
  EXPECT_THROW(impair::parse_impairment(""), std::invalid_argument);
  EXPECT_THROW(impair::parse_impairment("warp,factor=9"),
               std::invalid_argument);
  EXPECT_THROW(impair::parse_impairment("quantize,bits=99"),
               std::invalid_argument);
  EXPECT_THROW(impair::parse_impairment("phase_noise,linewidth_hz=-1"),
               std::invalid_argument);
  EXPECT_THROW(impair::parse_impairment("iq_imbalance,phase_deg=90"),
               std::invalid_argument);
  EXPECT_THROW(impair::parse_impairment("inter_sf,sf=13,pps=1"),
               std::invalid_argument);
  EXPECT_NO_THROW(impair::parse_impairment("clock_drift,ppm=-40"));
  const auto cfg = impair::parse_impairment("quantize,bits=10,full_scale=8");
  EXPECT_EQ(cfg.kind, impair::Kind::kQuantize);
  EXPECT_EQ(cfg.bits, 10u);
  EXPECT_EQ(cfg.full_scale, 8.0);
  EXPECT_EQ(cfg.to_string(), "quantize,bits=10,full_scale=8");
}

// Mild severities must keep the TnB receiver's PRR above pinned floors
// across the SF range — the decode-survival grid. "Mild" scales with the
// symbol time: what a long SF 12 symbol tolerates in oscillator linewidth
// and clock drift is far tighter than SF 7 (linewidth x symbol-time and
// per-packet chip drift are the invariant quantities, and osf 1 makes one
// chip one sample). Floors sit below the observed values (clean traces at
// 15 dB decode at ~1.0) so the test pins "impairments at realistic
// severity do not break decoding" without flaking.
TEST(Impairments, DecodeSurvivalGridAcrossSf) {
  struct Cell {
    unsigned sf;
    unsigned osf;
    double duration_s;
    const char* phase_noise;
    const char* clock_drift;
    const char* doppler;
    double min_prr;
  };
  // osf 1 keeps SF 10/12 affordable; SF 7 runs the default-ish osf 4.
  const std::vector<Cell> grid = {
      {7u, 4u, 1.0, "phase_noise,linewidth_hz=50", "clock_drift,ppm=10",
       "doppler,hz=100", 0.6},
      {10u, 1u, 4.0, "phase_noise,linewidth_hz=10", "clock_drift,ppm=4",
       "doppler,hz=100", 0.6},
      {12u, 1u, 16.0, "phase_noise,linewidth_hz=0.5", "clock_drift,ppm=1",
       "doppler,hz=10", 0.6}};
  for (const Cell& cell : grid) {
    SCOPED_TRACE("sf=" + std::to_string(cell.sf));
    const lora::Params params = test_params(cell.sf, cell.osf);
    sim::TraceOptions opt;
    opt.duration_s = cell.duration_s;
    opt.load_pps = 5.0 / cell.duration_s;  // ~5 packets, few collisions
    opt.nodes = test_nodes(3, 15.0);
    for (const char* spec :
         {cell.phase_noise, "iq_imbalance,gain_db=0.5,phase_deg=2",
          "quantize,bits=12", cell.clock_drift, cell.doppler}) {
      opt.impairments.push_back(impair::parse_impairment(spec));
    }
    Rng rng(100 + cell.sf);
    const sim::Trace trace = sim::build_trace(params, opt, rng);
    ASSERT_GE(trace.packets.size(), 4u);
    rx::Receiver receiver(params);
    Rng drng(1);
    const auto decoded = receiver.decode(trace.iq, drng);
    const auto result = sim::evaluate(trace, decoded);
    EXPECT_GE(result.prr, cell.min_prr)
        << "decoded " << result.decoded_unique << "/" << result.transmitted;
  }
}

// Per-trace stages apply identically to every antenna: inter_sf draws its
// interferers once and adds the same waveform everywhere, so the antennas
// stay coherent (receive diversity must see the same air).
TEST(Impairments, InterSfIdenticalAcrossAntennas) {
  const lora::Params params = test_params();
  sim::TraceOptions opt = base_options(0.8, 4.0);
  opt.n_antennas = 2;
  opt.impairments.push_back(
      impair::parse_impairment("inter_sf,sf=10,pps=6,snr_db=15"));
  Rng rng(11);
  const sim::Trace with = sim::build_trace(params, opt, rng);

  opt.impairments.clear();
  Rng rng2(11);
  const sim::Trace without = sim::build_trace(params, opt, rng2);

  ASSERT_EQ(with.iq.size(), without.iq.size());
  ASSERT_EQ(with.extra_antennas.size(), 1u);
  // The interferer delta on antenna 0 equals the delta on antenna 1.
  double max_diff = 0.0;
  bool injected = false;
  for (std::size_t i = 0; i < with.iq.size(); ++i) {
    const cfloat d0 = with.iq[i] - without.iq[i];
    const cfloat d1 = with.extra_antennas[0][i] - without.extra_antennas[0][i];
    max_diff = std::max(max_diff, static_cast<double>(std::abs(d0 - d1)));
    if (std::abs(d0) > 1e-3f) injected = true;
  }
  EXPECT_TRUE(injected);
  // The deltas are recovered by float subtraction against per-antenna
  // baselines, so they agree to float rounding of the carrier amplitude,
  // not bit-exactly.
  EXPECT_LT(max_diff, 1e-4);
}

}  // namespace
