#include "core/bec.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "common/rng.hpp"
#include "lora/frame.hpp"
#include "lora/hamming.hpp"
#include "lora/header.hpp"
#include "lora/interleaver.hpp"

namespace tnb::rx {
namespace {

/// A random block of valid codewords.
std::vector<std::uint8_t> random_block(unsigned sf, unsigned cr, Rng& rng) {
  std::vector<std::uint8_t> rows(sf);
  for (auto& r : rows) {
    r = lora::codewords(cr)[rng.uniform_index(16)];
  }
  return rows;
}

/// Corrupts the given columns: each bit in an error column flips with
/// probability 1/2, re-drawn until the column actually differs somewhere
/// (otherwise it would not be an error column).
std::vector<std::uint8_t> corrupt_columns(std::span<const std::uint8_t> rows,
                                          std::span<const unsigned> cols,
                                          Rng& rng) {
  std::vector<std::uint8_t> out(rows.begin(), rows.end());
  for (unsigned c : cols) {
    bool any = false;
    while (!any) {
      for (std::size_t r = 0; r < out.size(); ++r) {
        out[r] = static_cast<std::uint8_t>(out[r] & ~(1u << c));
        const unsigned orig = (rows[r] >> c) & 1u;
        const unsigned bit = rng.uniform() < 0.5 ? orig ^ 1u : orig;
        out[r] |= static_cast<std::uint8_t>(bit << c);
        if (bit != orig) any = true;
      }
    }
  }
  return out;
}

bool contains(const std::vector<std::vector<std::uint8_t>>& candidates,
              const std::vector<std::uint8_t>& truth) {
  for (const auto& c : candidates) {
    if (c == truth) return true;
  }
  return false;
}

TEST(BecCompanions, Cr2PairsMatchPaper) {
  // Paper A.1 (1-indexed): c1-c5, c2-c3, c4-c6. Zero-indexed: 0-4, 1-2, 3-5.
  const Bec bec(8, 2);
  const std::pair<unsigned, unsigned> pairs[] = {{0, 4}, {1, 2}, {3, 5}};
  for (const auto& [a, b] : pairs) {
    const auto ca = bec.companions(static_cast<std::uint8_t>(1u << a));
    ASSERT_EQ(ca.size(), 1u) << "col " << a;
    EXPECT_EQ(ca[0], static_cast<std::uint8_t>(1u << b));
    const auto cb = bec.companions(static_cast<std::uint8_t>(1u << b));
    ASSERT_EQ(cb.size(), 1u);
    EXPECT_EQ(cb[0], static_cast<std::uint8_t>(1u << a));
  }
}

TEST(BecCompanions, Cr3EveryPairHasUniqueSingleColumnCompanion) {
  const Bec bec(8, 3);
  for (unsigned a = 0; a < 7; ++a) {
    for (unsigned b = a + 1; b < 7; ++b) {
      const std::uint8_t mask = static_cast<std::uint8_t>((1u << a) | (1u << b));
      const auto comps = bec.companions(mask);
      ASSERT_EQ(comps.size(), 1u) << "pair " << a << "," << b;
      EXPECT_EQ(std::popcount(static_cast<unsigned>(comps[0])), 1);
      EXPECT_EQ(comps[0] & mask, 0);
    }
  }
}

TEST(BecCompanions, Cr4EveryPairHasThreeCompanions) {
  // Paper A.1: |Pi| = 2 at CR 4 has 3 companions (the companion group).
  const Bec bec(8, 4);
  for (unsigned a = 0; a < 8; ++a) {
    for (unsigned b = a + 1; b < 8; ++b) {
      const std::uint8_t mask = static_cast<std::uint8_t>((1u << a) | (1u << b));
      const auto comps = bec.companions(mask);
      ASSERT_EQ(comps.size(), 3u) << "pair " << a << "," << b;
      for (std::uint8_t c : comps) {
        EXPECT_EQ(std::popcount(static_cast<unsigned>(c)), 2);
        EXPECT_EQ(c & mask, 0);
      }
    }
  }
}

TEST(BecCompanions, Cr4TripleHasUniqueCompanion) {
  const Bec bec(8, 4);
  unsigned checked = 0;
  for (unsigned a = 0; a < 8; ++a) {
    for (unsigned b = a + 1; b < 8; ++b) {
      for (unsigned c = b + 1; c < 8; ++c) {
        const std::uint8_t mask =
            static_cast<std::uint8_t>((1u << a) | (1u << b) | (1u << c));
        const auto comps = bec.companions(mask);
        // Some triples are not inside any weight-4 codeword; when they are,
        // the companion is a unique single column.
        if (!comps.empty()) {
          EXPECT_EQ(comps.size(), 1u);
          EXPECT_EQ(std::popcount(static_cast<unsigned>(comps[0])), 1);
          ++checked;
        }
      }
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(BecDecode, CleanBlockSingleCandidate) {
  Rng rng(1);
  for (unsigned cr = 1; cr <= 4; ++cr) {
    const Bec bec(8, cr);
    const auto rows = random_block(8, cr, rng);
    const auto cands = bec.decode_block(rows);
    ASSERT_EQ(cands.size(), 1u) << "cr=" << cr;
    EXPECT_EQ(cands[0], rows);
  }
}

TEST(BecDecode, GammaIsAlwaysFirstCandidate) {
  Rng rng(2);
  const Bec bec(8, 3);
  const auto truth = random_block(8, 3, rng);
  const unsigned cols[] = {1, 5};
  const auto rx = corrupt_columns(truth, cols, rng);
  const auto cands = bec.decode_block(rx);
  ASSERT_FALSE(cands.empty());
  // First candidate is the per-row default decode.
  for (unsigned r = 0; r < 8; ++r) {
    EXPECT_EQ(cands[0][r], lora::default_decode(rx[r], 3).codeword);
  }
}

class BecSingleColumn : public ::testing::TestWithParam<unsigned> {};

TEST_P(BecSingleColumn, CorrectsOneColumnErrors) {
  // Paper Table 1: BEC corrects 1-symbol errors at every CR.
  const unsigned cr = GetParam();
  Rng rng(cr * 17);
  const Bec bec(8, cr);
  int ok = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    const auto truth = random_block(8, cr, rng);
    const unsigned col = static_cast<unsigned>(rng.uniform_index(4 + cr));
    const unsigned cols[] = {col};
    const auto rx = corrupt_columns(truth, cols, rng);
    if (contains(bec.decode_block(rx), truth)) ++ok;
  }
  EXPECT_EQ(ok, trials) << "cr=" << cr;
}

INSTANTIATE_TEST_SUITE_P(AllCr, BecSingleColumn, ::testing::Values(1u, 2u, 3u, 4u));

TEST(BecDecode, Cr3CorrectsTwoColumnErrors) {
  // Paper: "almost all" 2-symbol errors at CR 3 (failure prob ~2^-SF when
  // the diffs collapse onto the companion column alone).
  Rng rng(5);
  const Bec bec(8, 3);
  int ok = 0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    const auto truth = random_block(8, 3, rng);
    unsigned c1 = static_cast<unsigned>(rng.uniform_index(7));
    unsigned c2 = static_cast<unsigned>(rng.uniform_index(7));
    while (c2 == c1) c2 = static_cast<unsigned>(rng.uniform_index(7));
    const unsigned cols[] = {c1, c2};
    const auto rx = corrupt_columns(truth, cols, rng);
    if (contains(bec.decode_block(rx), truth)) ++ok;
  }
  EXPECT_GE(ok, trials - 10);  // expected failures ~ trials * 2^-8
}

TEST(BecDecode, Cr4CorrectsAllTwoColumnErrors) {
  // Paper Table 2: error probability 0 for CR 4 with 2 error columns.
  Rng rng(6);
  const Bec bec(8, 4);
  const int trials = 500;
  int ok = 0;
  for (int t = 0; t < trials; ++t) {
    const auto truth = random_block(8, 4, rng);
    unsigned c1 = static_cast<unsigned>(rng.uniform_index(8));
    unsigned c2 = static_cast<unsigned>(rng.uniform_index(8));
    while (c2 == c1) c2 = static_cast<unsigned>(rng.uniform_index(8));
    const unsigned cols[] = {c1, c2};
    const auto rx = corrupt_columns(truth, cols, rng);
    if (contains(bec.decode_block(rx), truth)) ++ok;
  }
  EXPECT_EQ(ok, trials);
}

class BecThreeColumn : public ::testing::TestWithParam<unsigned> {};

TEST_P(BecThreeColumn, Cr4CorrectsMostThreeColumnErrors) {
  // Paper Fig. 20: decoding error < 0.04 at SF 7 and decreasing with SF.
  const unsigned sf = GetParam();
  Rng rng(sf * 31);
  const Bec bec(sf, 4);
  const int trials = 400;
  int ok = 0;
  for (int t = 0; t < trials; ++t) {
    const auto truth = random_block(sf, 4, rng);
    std::set<unsigned> cols_set;
    while (cols_set.size() < 3) {
      cols_set.insert(static_cast<unsigned>(rng.uniform_index(8)));
    }
    std::vector<unsigned> cols(cols_set.begin(), cols_set.end());
    const auto rx = corrupt_columns(truth, cols, rng);
    if (contains(bec.decode_block(rx), truth)) ++ok;
  }
  const double rate = static_cast<double>(ok) / trials;
  EXPECT_GE(rate, 0.90) << "sf=" << sf;
  if (sf >= 10) {
    EXPECT_GE(rate, 0.95);
  }
}

INSTANTIATE_TEST_SUITE_P(SfSweep, BecThreeColumn, ::testing::Values(7u, 8u, 10u, 12u));

TEST(BecDecode, RejectsWrongRowCount) {
  const Bec bec(8, 4);
  std::vector<std::uint8_t> rows(7);
  EXPECT_THROW(bec.decode_block(rows), std::invalid_argument);
}

TEST(BecDecode, InvalidParamsThrow) {
  EXPECT_THROW(Bec(4, 4), std::invalid_argument);
  EXPECT_THROW(Bec(13, 4), std::invalid_argument);
  EXPECT_THROW(Bec(8, 0), std::invalid_argument);
  EXPECT_THROW(Bec(8, 5), std::invalid_argument);
  EXPECT_NO_THROW(Bec(5, 4));  // SF5 floor (wire reduced-rate blocks)
}

TEST(BecDecode, StatsCountRepairs) {
  Rng rng(7);
  const Bec bec(8, 3);
  BecStats stats;
  const auto truth = random_block(8, 3, rng);
  const unsigned cols[] = {0, 3};
  const auto rx = corrupt_columns(truth, cols, rng);
  bec.decode_block(rx, &stats);
  EXPECT_GT(stats.delta1, 0u);       // CR3 2-col repairs use Delta_1
  EXPECT_LE(stats.delta1, 3u);       // paper Table 2: 3 Delta_1
  EXPECT_EQ(stats.delta2, 0u);
  EXPECT_EQ(stats.delta3, 0u);
}

TEST(BecDecode, StatsAccumulate) {
  BecStats a, b;
  a.delta1 = 2;
  a.crc_checks = 5;
  b.delta1 = 3;
  b.crc_checks = 7;
  b.candidate_blocks = 1;
  a += b;
  EXPECT_EQ(a.delta1, 5u);
  EXPECT_EQ(a.crc_checks, 12u);
  EXPECT_EQ(a.candidate_blocks, 1u);
}

TEST(BecW, BudgetMatchesPaper) {
  EXPECT_EQ(bec_w_budget(1), 125u);
  EXPECT_EQ(bec_w_budget(2), 16u);
  EXPECT_EQ(bec_w_budget(3), 16u);
  EXPECT_EQ(bec_w_budget(4), 16u);
}

// ---- Packet level ----

class BecPacket : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(BecPacket, CorrectsSymbolCorruptionBeyondDefaultDecoder) {
  const auto [sf, cr] = GetParam();
  lora::Params p{.sf = sf, .cr = cr};
  Rng rng(sf * 100 + cr);
  int bec_ok = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    std::vector<std::uint8_t> app(14);
    for (auto& b : app) b = static_cast<std::uint8_t>(rng.uniform_index(256));
    const auto payload = lora::assemble_payload(app);
    auto symbols = lora::encode_payload_symbols(p, payload);

    // Corrupt one symbol in each of two blocks (the paper's operating
    // envelope: W = 125 = 5^3 covers up to three corrupted CR1 blocks).
    const std::size_t cols = p.codeword_len();
    const std::size_t n_blocks = symbols.size() / cols;
    std::size_t b1 = rng.uniform_index(n_blocks);
    std::size_t b2 = rng.uniform_index(n_blocks);
    while (n_blocks > 1 && b2 == b1) b2 = rng.uniform_index(n_blocks);
    for (std::size_t blk : {b1, b2}) {
      const std::size_t victim = blk * cols + rng.uniform_index(cols);
      symbols[victim] ^= static_cast<std::uint32_t>(
          1 + rng.uniform_index((1u << sf) - 1));
    }
    BecPacketResult r =
        decode_payload_bec(p, symbols, payload.size(), rng, nullptr);
    if (r.ok) {
      ++bec_ok;
      EXPECT_EQ(r.payload, payload);
    }
  }
  // One corrupted symbol per block is within BEC's 1-column capability at
  // every CR, so every packet must decode.
  EXPECT_EQ(bec_ok, trials);
}

INSTANTIATE_TEST_SUITE_P(
    SfCrGrid, BecPacket,
    ::testing::Combine(::testing::Values(7u, 8u, 10u),
                       ::testing::Values(1u, 2u, 3u, 4u)));

TEST(BecPacketLevel, RescuedCodewordsCounted) {
  lora::Params p{.sf = 8, .cr = 4};
  Rng rng(11);
  std::vector<std::uint8_t> app(14, 0x42);
  const auto payload = lora::assemble_payload(app);
  auto symbols = lora::encode_payload_symbols(p, payload);
  // Two corrupted symbols in block 0: beyond the default decoder for some
  // rows, so BEC must rescue at least one codeword.
  symbols[0] ^= 0x55;
  symbols[5] ^= 0x2A;
  BecPacketResult r = decode_payload_bec(p, symbols, payload.size(), rng);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.payload, payload);
  EXPECT_GT(r.rescued_codewords, 0u);
}

TEST(BecPacketLevel, CleanPacketZeroRescued) {
  lora::Params p{.sf = 8, .cr = 2};
  Rng rng(12);
  std::vector<std::uint8_t> app(14, 0x24);
  const auto payload = lora::assemble_payload(app);
  const auto symbols = lora::encode_payload_symbols(p, payload);
  BecPacketResult r = decode_payload_bec(p, symbols, payload.size(), rng);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.rescued_codewords, 0u);
}

TEST(BecPacketLevel, HopelessCorruptionFailsCleanly) {
  lora::Params p{.sf = 8, .cr = 1};
  Rng rng(13);
  std::vector<std::uint8_t> app(14, 0x99);
  const auto payload = lora::assemble_payload(app);
  auto symbols = lora::encode_payload_symbols(p, payload);
  for (auto& s : symbols) s ^= static_cast<std::uint32_t>(rng.uniform_index(256));
  BecStats stats;
  BecPacketResult r = decode_payload_bec(p, symbols, payload.size(), rng, &stats);
  EXPECT_FALSE(r.ok);
  EXPECT_LE(stats.crc_checks, bec_w_budget(1));
}

TEST(BecPacketLevel, ShortSymbolSpanFails) {
  lora::Params p{.sf = 8, .cr = 4};
  Rng rng(14);
  std::vector<std::uint32_t> too_few(4, 0);
  BecPacketResult r = decode_payload_bec(p, too_few, 16, rng);
  EXPECT_FALSE(r.ok);
}

TEST(BecHeader, CorrectsCorruptedHeaderSymbol) {
  lora::Params p{.sf = 8, .cr = 3};
  lora::Header h{.payload_len = 16, .cr = 3, .has_crc = true};
  auto symbols = lora::encode_header_symbols(p, h);
  Rng rng(15);
  int ok = 0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    auto corrupted = symbols;
    const std::size_t victim = rng.uniform_index(corrupted.size());
    corrupted[victim] ^= static_cast<std::uint32_t>(
        1 + rng.uniform_index((1u << p.sf) - 1));
    const auto hdr = decode_header_bec(p, corrupted);
    if (hdr.has_value() && *hdr == h) ++ok;
  }
  EXPECT_EQ(ok, trials);  // 1-column errors always correctable at CR 4
}

TEST(BecPacketLevel, NoFalseAcceptUnderRandomCorruption) {
  // Property (pinned seed, deterministic): whatever decode_payload_bec
  // does under corruption *beyond* its capability — arbitrarily many
  // symbols hit — it must never silently mis-decode: every accepted
  // payload equals the transmitted one or the packet is reported failed.
  // A 16-bit CRC collision could in principle defeat this, which is why
  // the seed is pinned and the 1000 cases below are known collision-free;
  // the fuzz harnesses assert only the CRC-validity half of the property.
  Rng rng(0xFA15EACCu);
  std::size_t accepted = 0, rejected = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    lora::Params p{.sf = 7u + static_cast<unsigned>(rng.uniform_index(6)),
                   .cr = 1u + static_cast<unsigned>(rng.uniform_index(4))};
    std::vector<std::uint8_t> app(1 + rng.uniform_index(24));
    for (auto& b : app) b = static_cast<std::uint8_t>(rng.uniform_index(256));
    const auto payload = lora::assemble_payload(app);
    auto symbols = lora::encode_payload_symbols(p, payload);

    // Corrupt between 1 symbol and half the packet, anywhere.
    const std::size_t n_bad = 1 + rng.uniform_index(symbols.size() / 2 + 1);
    const std::uint32_t mask = (1u << p.bits_per_symbol()) - 1u;
    for (std::size_t i = 0; i < n_bad; ++i) {
      const std::size_t at = rng.uniform_index(symbols.size());
      symbols[at] ^= 1u + static_cast<std::uint32_t>(rng.uniform_index(mask));
    }

    Rng dec_rng(static_cast<std::uint64_t>(trial) + 1);
    const BecPacketResult r =
        decode_payload_bec(p, symbols, payload.size(), dec_rng);
    if (r.ok) {
      ++accepted;
      ASSERT_EQ(r.payload, payload)
          << "silent mis-decode at trial " << trial << " (sf=" << p.sf
          << " cr=" << p.cr << ", " << n_bad << " corruptions)";
    } else {
      ++rejected;
    }
  }
  // The property must have been exercised from both sides.
  EXPECT_GT(accepted, 50u);
  EXPECT_GT(rejected, 50u);
}

TEST(BecHeader, TooFewSymbolsRejected) {
  lora::Params p{.sf = 8, .cr = 4};
  std::vector<std::uint32_t> syms(4, 0);
  EXPECT_FALSE(decode_header_bec(p, syms).has_value());
}

}  // namespace
}  // namespace tnb::rx
