// tnb::fleet windowed-prototype tolerance harness (ISSUE 7): taps > 1
// trades the taps == 1 exact block-DFT reconstruction for adjacent-channel
// rejection, so lane output is no longer bit-identical to the exact
// channelizer's. This file pins how close it must stay: per-channel packet
// agreement against the taps == 1 reference above a fixed threshold, and
// full scheduling determinism for any lane count / chunk size at fixed
// taps.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fleet/channelizer.hpp"
#include "fleet/fleet.hpp"
#include "sim/trace_builder.hpp"
#include "stream/chunk_source.hpp"

namespace tnb::fleet {
namespace {

// Minimum fraction of taps==1 reference packets the windowed-prototype
// lanes must reproduce (and vice versa — agreement is symmetric). The
// prototype's passband covers the half-band LoRa occupies at osf 2, so in
// practice agreement is ~1.0; the pin leaves room for edge-of-band loss
// only.
constexpr double kAgreementThreshold = 0.85;

lora::Params test_params() {
  return {.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
}

sim::TraceOptions traffic(double duration_s, double load_pps) {
  sim::TraceOptions opt;
  opt.duration_s = duration_s;
  opt.load_pps = load_pps;
  opt.nodes = {{1, 20.0, 900.0}, {2, 15.0, -1800.0}, {3, 12.0, 400.0}};
  return opt;
}

IqBuffer make_wideband(const lora::Params& p, unsigned n_channels,
                       std::uint64_t seed) {
  Rng rng(seed);
  const auto traces =
      sim::build_multichannel_traces(p, traffic(1.5, 8.0), n_channels, rng);
  std::vector<IqBuffer> per_channel;
  for (const auto& t : traces) per_channel.push_back(t.iq);
  return mix_channels(per_channel, n_channels);
}

std::vector<std::vector<std::uint8_t>> lane_payloads(
    const std::vector<LedgerEntry>& ledger, unsigned channel, unsigned sf) {
  std::vector<std::vector<std::uint8_t>> out;
  for (const auto& e : ledger) {
    if (e.channel == channel && e.sf == sf) out.push_back(e.pkt.payload);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<LedgerEntry> run_fleet(const lora::Params& p,
                                   const IqBuffer& wideband,
                                   unsigned n_channels, unsigned taps,
                                   int lanes, std::size_t chunk) {
  FleetOptions fopt;
  fopt.n_channels = n_channels;
  fopt.sfs = {p.sf};
  fopt.lanes = lanes;
  fopt.taps = taps;
  fopt.stream.rng_seed = 1;
  Fleet fleet(p, fopt);
  stream::BufferSource src(wideband);
  fleet.consume(src, chunk);
  return fleet.ledger();
}

/// Multiset intersection size (both inputs sorted).
std::size_t agreement_count(std::vector<std::vector<std::uint8_t>> a,
                            std::vector<std::vector<std::uint8_t>> b) {
  std::vector<std::vector<std::uint8_t>> both;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(both));
  return both.size();
}

TEST(FleetTaps, WindowedPrototypeAgreesWithExactLanes) {
  const lora::Params p = test_params();
  const unsigned n_channels = 4;
  const IqBuffer wideband = make_wideband(p, n_channels, 42);

  const auto exact = run_fleet(p, wideband, n_channels, 1, 2, 65536);
  std::size_t ref_total = 0;
  for (unsigned c = 0; c < n_channels; ++c) {
    ref_total += lane_payloads(exact, c, p.sf).size();
  }
  ASSERT_GE(ref_total, 4u) << "reference too quiet to be a meaningful test";

  for (const unsigned taps : {2u, 3u, 4u}) {
    SCOPED_TRACE("taps=" + std::to_string(taps));
    const auto windowed = run_fleet(p, wideband, n_channels, taps, 2, 65536);
    std::size_t win_total = 0, agreed = 0;
    for (unsigned c = 0; c < n_channels; ++c) {
      const auto ref = lane_payloads(exact, c, p.sf);
      const auto got = lane_payloads(windowed, c, p.sf);
      win_total += got.size();
      agreed += agreement_count(ref, got);
    }
    // Symmetric tolerance: the windowed lanes must reproduce most of the
    // reference AND not invent packets the exact lanes never saw.
    EXPECT_GE(static_cast<double>(agreed),
              kAgreementThreshold * static_cast<double>(ref_total))
        << "windowed lanes dropped too many reference packets ("
        << agreed << "/" << ref_total << ")";
    EXPECT_GE(static_cast<double>(agreed),
              kAgreementThreshold * static_cast<double>(win_total))
        << "windowed lanes invented packets (" << agreed << "/" << win_total
        << ")";
  }
}

TEST(FleetTaps, WindowedLanesAreScheduleDeterministic) {
  // The tolerance is against taps == 1 only. At fixed taps the fleet's
  // determinism guarantee is unconditional: every lane count and chunking
  // must produce the identical frozen ledger.
  const lora::Params p = test_params();
  const unsigned n_channels = 4;
  const IqBuffer wideband = make_wideband(p, n_channels, 42);

  struct Run {
    int lanes;
    std::size_t chunk;
  };
  std::vector<std::vector<LedgerEntry>> ledgers;
  for (const Run r : {Run{1, std::size_t{65536}}, Run{2, std::size_t{999}},
                      Run{8, std::size_t{4096}}}) {
    ledgers.push_back(run_fleet(p, wideband, n_channels, 3, r.lanes, r.chunk));
  }
  ASSERT_GE(ledgers[0].size(), 3u);
  for (std::size_t i = 1; i < ledgers.size(); ++i) {
    ASSERT_EQ(ledgers[i].size(), ledgers[0].size());
    for (std::size_t j = 0; j < ledgers[0].size(); ++j) {
      EXPECT_EQ(ledgers[i][j].channel, ledgers[0][j].channel);
      EXPECT_EQ(ledgers[i][j].t0, ledgers[0][j].t0);
      EXPECT_EQ(ledgers[i][j].pkt.payload, ledgers[0][j].pkt.payload);
    }
  }
}

TEST(FleetTaps, TapsPlumbedThroughToChannelizer) {
  const lora::Params p = test_params();
  FleetOptions fopt;
  fopt.n_channels = 2;
  fopt.sfs = {p.sf};
  fopt.taps = 3;
  const Fleet fleet(p, fopt);
  EXPECT_EQ(fleet.options().taps, 3u);
}

}  // namespace
}  // namespace tnb::fleet
