#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "sim/deployment.hpp"
#include "sim/metrics.hpp"
#include "sim/trace_builder.hpp"

namespace tnb::sim {
namespace {

lora::Params small_params() {
  // SF7/OSF2 keeps trace synthesis fast in unit tests.
  return lora::Params{.sf = 7, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
}

TEST(Deployment, PresetsMatchPaperNodeCounts) {
  EXPECT_EQ(indoor_deployment().n_nodes, 19u);
  EXPECT_EQ(outdoor1_deployment().n_nodes, 25u);
  EXPECT_EQ(outdoor2_deployment().n_nodes, 25u);
}

TEST(Deployment, DrawsRespectBounds) {
  Rng rng(1);
  for (const Deployment& d : {indoor_deployment(), outdoor1_deployment(),
                              outdoor2_deployment()}) {
    const auto nodes = d.draw_nodes(rng);
    ASSERT_EQ(nodes.size(), d.n_nodes);
    for (const NodeConfig& n : nodes) {
      EXPECT_GE(n.snr_db, d.snr_min_db);
      EXPECT_LE(n.snr_db, d.snr_max_db);
      EXPECT_LE(std::abs(n.cfo_hz), kMaxCfoHz);
      EXPECT_GE(n.id, 1u);
    }
  }
}

TEST(Deployment, EtuRangesFollowSf) {
  const Deployment d8 = etu_deployment(8);
  EXPECT_EQ(d8.snr_min_db, 0.0);
  EXPECT_EQ(d8.snr_max_db, 20.0);
  const Deployment d10 = etu_deployment(10);
  EXPECT_EQ(d10.snr_min_db, -6.0);
  EXPECT_EQ(d10.snr_max_db, 14.0);
}

TEST(AppPayload, RoundTrip) {
  Rng rng(2);
  const auto p = make_app_payload(513, 42, 14, rng);
  ASSERT_EQ(p.size(), 14u);
  std::uint16_t node = 0, seq = 0;
  ASSERT_TRUE(parse_app_payload(p, node, seq));
  EXPECT_EQ(node, 513);
  EXPECT_EQ(seq, 42);
}

TEST(AppPayload, RejectsCorruptMagicAndShortInput) {
  Rng rng(3);
  auto p = make_app_payload(1, 1, 14, rng);
  p[0] ^= 0xFF;
  std::uint16_t node = 0, seq = 0;
  EXPECT_FALSE(parse_app_payload(p, node, seq));
  std::vector<std::uint8_t> tiny(4);
  EXPECT_FALSE(parse_app_payload(tiny, node, seq));
  EXPECT_THROW(make_app_payload(1, 1, 4, rng), std::invalid_argument);
}

TEST(TraceBuilder, ProducesRequestedLoad) {
  Rng rng(4);
  const lora::Params p = small_params();
  TraceOptions opt;
  opt.duration_s = 1.0;
  opt.load_pps = 12.0;
  opt.nodes = {{1, 20.0, 100.0}, {2, 15.0, -300.0}, {3, 18.0, 900.0}};
  const Trace trace = build_trace(p, opt, rng);
  EXPECT_EQ(trace.packets.size(), 12u);  // 4 per node
  EXPECT_EQ(trace.iq.size(), static_cast<std::size_t>(p.sample_rate_hz()));
  EXPECT_GT(trace.noise_power, 0.0);
  // Ground truth sorted by start.
  EXPECT_TRUE(std::is_sorted(trace.packets.begin(), trace.packets.end(),
                             [](const TxPacketRecord& a, const TxPacketRecord& b) {
                               return a.start_sample < b.start_sample;
                             }));
}

TEST(TraceBuilder, SequenceNumbersPerNodeAreConsecutive) {
  Rng rng(5);
  TraceOptions opt;
  opt.duration_s = 1.0;
  opt.load_pps = 9.0;
  opt.nodes = {{7, 20.0, 0.0}, {9, 20.0, 0.0}, {11, 20.0, 0.0}};
  const Trace trace = build_trace(small_params(), opt, rng);
  std::map<std::uint16_t, std::vector<std::uint16_t>> seqs;
  for (const auto& rec : trace.packets) seqs[rec.node_id].push_back(rec.seq);
  for (auto& [node, v] : seqs) {
    std::sort(v.begin(), v.end());
    for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v[i], i);
  }
}

TEST(TraceBuilder, SignalEnergyPresentWherePacketIs) {
  Rng rng(6);
  TraceOptions opt;
  opt.duration_s = 0.5;
  opt.load_pps = 2.0;
  opt.nodes = {{1, 30.0, 0.0}};
  opt.add_noise = false;
  const Trace trace = build_trace(small_params(), opt, rng);
  ASSERT_FALSE(trace.packets.empty());
  const auto& rec = trace.packets[0];
  double in_pkt = 0.0;
  const std::size_t s0 = static_cast<std::size_t>(rec.start_sample);
  for (std::size_t i = s0; i < s0 + 100; ++i) in_pkt += std::norm(trace.iq[i]);
  EXPECT_GT(in_pkt, 1.0);
}

TEST(TraceBuilder, ValidatesInputs) {
  Rng rng(7);
  TraceOptions opt;
  opt.duration_s = 1.0;
  opt.load_pps = 5.0;
  EXPECT_THROW(build_trace(small_params(), opt, rng), std::invalid_argument);
  opt.nodes = {{1, 10.0, 0.0}};
  opt.duration_s = 0.01;  // shorter than one packet
  EXPECT_THROW(build_trace(small_params(), opt, rng), std::invalid_argument);
}

Trace tiny_trace(Rng& rng) {
  TraceOptions opt;
  opt.duration_s = 1.0;
  opt.load_pps = 8.0;
  opt.nodes = {{1, 25.0, 0.0}, {2, 25.0, 0.0}};
  opt.add_noise = false;
  return build_trace(small_params(), opt, rng);
}

TEST(Metrics, PerfectDecoderScoresFullPrr) {
  Rng rng(8);
  const Trace trace = tiny_trace(rng);
  std::vector<DecodedPacket> decoded;
  for (const auto& rec : trace.packets) {
    decoded.push_back({rec.app_payload, rec.start_sample});
  }
  const EvalResult r = evaluate(trace, decoded);
  EXPECT_EQ(r.transmitted, trace.packets.size());
  EXPECT_EQ(r.decoded_unique, trace.packets.size());
  EXPECT_EQ(r.false_packets, 0u);
  EXPECT_NEAR(r.prr, 1.0, 1e-12);
}

TEST(Metrics, DuplicatesCountOnce) {
  Rng rng(9);
  const Trace trace = tiny_trace(rng);
  std::vector<DecodedPacket> decoded;
  decoded.push_back({trace.packets[0].app_payload, 0.0});
  decoded.push_back({trace.packets[0].app_payload, 0.0});
  const EvalResult r = evaluate(trace, decoded);
  EXPECT_EQ(r.decoded_unique, 1u);
  EXPECT_EQ(r.decoded_raw, 2u);
}

TEST(Metrics, CorruptedPayloadIsFalsePacket) {
  Rng rng(10);
  const Trace trace = tiny_trace(rng);
  auto payload = trace.packets[0].app_payload;
  payload[10] ^= 0xFF;  // data corrupted but id/seq intact
  std::vector<DecodedPacket> decoded{{payload, 0.0}};
  const EvalResult r = evaluate(trace, decoded);
  EXPECT_EQ(r.decoded_unique, 0u);
  EXPECT_EQ(r.false_packets, 1u);
}

TEST(Metrics, PerNodePrr) {
  Rng rng(11);
  const Trace trace = tiny_trace(rng);
  // Decode only node 1's packets.
  std::vector<DecodedPacket> decoded;
  for (const auto& rec : trace.packets) {
    if (rec.node_id == 1) decoded.push_back({rec.app_payload, rec.start_sample});
  }
  const auto prr = per_node_prr(trace, decoded);
  EXPECT_NEAR(prr.at(1), 1.0, 1e-12);
  EXPECT_NEAR(prr.at(2), 0.0, 1e-12);
}

TEST(Metrics, MediumUsageCountsOverlappingPackets) {
  Rng rng(12);
  const Trace trace = tiny_trace(rng);
  const auto usage = medium_usage_timeline(trace, 0.01);
  // Total packet-seconds must match.
  const double rate = trace.params.sample_rate_hz();
  double pkt_seconds = 0.0;
  for (const auto& rec : trace.packets) {
    pkt_seconds += static_cast<double>(rec.n_samples) / rate;
  }
  double usage_seconds = 0.0;
  for (int u : usage) usage_seconds += 0.01 * u;
  EXPECT_NEAR(usage_seconds, pkt_seconds, 0.02 * static_cast<double>(trace.packets.size()) + 0.1);
}

TEST(Metrics, CollisionLevelZeroWhenAlone) {
  // Construct a trace with two far-apart packets by retrying seeds.
  for (std::uint64_t seed = 20; seed < 200; ++seed) {
    Rng rng(seed);
    TraceOptions opt;
    opt.duration_s = 2.0;
    opt.load_pps = 1.0;
    opt.nodes = {{1, 25.0, 0.0}, {2, 25.0, 0.0}};
    opt.add_noise = false;
    const Trace trace = build_trace(small_params(), opt, rng);
    const auto& a = trace.packets[0];
    const auto& b = trace.packets[1];
    const bool overlap = a.start_sample + static_cast<double>(a.n_samples) >
                         b.start_sample;
    if (!overlap) {
      EXPECT_EQ(collision_level(trace, 0), 0);
      EXPECT_EQ(collision_level(trace, 1), 0);
      return;
    }
    // Overlapping case: both see one collider.
    EXPECT_EQ(collision_level(trace, 0), 1);
    EXPECT_EQ(collision_level(trace, 1), 1);
  }
}

TEST(Metrics, CollisionHistogramBucketsClamp) {
  Rng rng(13);
  const Trace trace = tiny_trace(rng);
  std::vector<DecodedPacket> decoded;
  for (const auto& rec : trace.packets) {
    decoded.push_back({rec.app_payload, rec.start_sample});
  }
  const auto hist = collision_level_histogram(trace, decoded, 4);
  ASSERT_EQ(hist.size(), 5u);
  std::size_t total = 0;
  for (std::size_t c : hist) total += c;
  EXPECT_EQ(total, trace.packets.size());
}

TEST(Metrics, PrrBySnrBuckets) {
  Rng rng(14);
  TraceOptions opt;
  opt.duration_s = 1.0;
  opt.load_pps = 8.0;
  opt.nodes = {{1, 5.0, 0.0}, {2, 25.0, 0.0}};
  opt.add_noise = false;
  const Trace trace = build_trace(small_params(), opt, rng);
  std::vector<DecodedPacket> decoded;
  for (const auto& rec : trace.packets) {
    if (rec.node_id == 2) decoded.push_back({rec.app_payload, rec.start_sample});
  }
  const auto buckets = prr_by_snr(trace, decoded, 10.0);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_NEAR(buckets[0].first, 0.0, 1e-9);   // node 1 bucket [0,10)
  EXPECT_NEAR(buckets[0].second, 0.0, 1e-9);
  EXPECT_NEAR(buckets[1].first, 20.0, 1e-9);  // node 2 bucket [20,30)
  EXPECT_NEAR(buckets[1].second, 1.0, 1e-9);
}

}  // namespace
}  // namespace tnb::sim
