// Fuzz harness: tnb::wire. Primitive round trips (whitening, Hamming,
// diagonal interleaver, Gray shift mapping, header), the full WireCodec
// encode -> decode identity over arbitrary configurations, and decoder
// totality on arbitrary bins.
#include <cstddef>
#include <cstdint>

#include "testing/oracles.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  tnb::testing::FuzzInput in(data, size);
  switch (in.u8() % 3) {
    case 0:
      tnb::testing::oracle_wire_primitives_roundtrip(in);
      break;
    case 1:
      tnb::testing::oracle_wire_codec_roundtrip(in);
      break;
    default:
      tnb::testing::oracle_wire_codec_totality(in);
      break;
  }
  return 0;
}
