// Fuzz harness: baseline receivers (ISSUE 7). Arbitrary int16-grid IQ
// through the CoRa / hybrid / LZn-Thrive receivers and through LZnSync
// directly: decode and sync must be total on hostile input (NaN bursts,
// truncated preambles, garbage), deterministic for a fixed seed, and
// every reported packet/detection must satisfy its documented contract.
#include <cstddef>
#include <cstdint>

#include "testing/oracles.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  tnb::testing::FuzzInput in(data, size);
  if (in.boolean()) {
    tnb::testing::oracle_lzn_sync_totality(in);
  } else {
    tnb::testing::oracle_baseline_receiver_totality(in);
  }
  return 0;
}
