// Fuzz harness: Prometheus exposition validation (tools/promcheck_lib,
// shared with the tnb_promcheck CLI).
//
// Mode 0 — totality: arbitrary bytes through parse/check_file/
//   check_monotonic never crash; a file that passes its per-file checks is
//   monotonic against itself.
// Mode 1 — round trip: a fuzz-built obs::Registry exported with
//   to_prometheus() must parse back violation-free; a second snapshot
//   taken after further increments must be monotonic over the first, and
//   (when a counter provably increased) the reversed order must be flagged
//   as a regression. promcheck_lib shares no code with the exporter, so
//   this is a genuine differential oracle.
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "promcheck_lib.hpp"
#include "testing/oracles.hpp"

namespace {

using tnb::testing::FuzzInput;

std::string join_failures(const tnb::promcheck::Report& rep) {
  std::string out;
  for (const auto& f : rep.failures) {
    out += "\n  ";
    out += f;
  }
  return out;
}

void totality(FuzzInput& in) {
  const std::vector<std::uint8_t> bytes = in.rest();
  std::istringstream s(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  tnb::promcheck::Report rep;
  const auto pf = tnb::promcheck::parse(s, "fuzz", rep);
  tnb::promcheck::check_file("fuzz", pf, rep);
  if (!rep.ok()) return;  // malformed input, correctly reported
  // A well-formed file (unique sample keys) never regresses vs itself.
  tnb::promcheck::Report self;
  tnb::promcheck::check_monotonic("fuzz", pf, "fuzz", pf, self);
  TNB_ORACLE(self.ok(),
             "well-formed exposition regresses against itself:" +
                 join_failures(self));
}

/// Metric-name-safe identifier from fuzz bytes (the exporter escapes label
/// values but takes names verbatim, so the oracle constrains them).
std::string arb_name(FuzzInput& in, const char* prefix) {
  static const char alpha[] = "abcdefghijklmnopqrstuvwxyz_";
  std::string s = prefix;
  const std::size_t n = static_cast<std::size_t>(in.uniform(1, 6));
  for (std::size_t i = 0; i < n; ++i) {
    s += alpha[in.uniform(0, sizeof(alpha) - 2)];
  }
  return s;
}

tnb::obs::Labels arb_labels(FuzzInput& in) {
  if (!in.boolean()) return {};
  static const char alnum[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string v;
  const std::size_t n = static_cast<std::size_t>(in.uniform(1, 5));
  for (std::size_t i = 0; i < n; ++i) {
    v += alnum[in.uniform(0, sizeof(alnum) - 2)];
  }
  return {{"k", v}};
}

void registry_round_trip(FuzzInput& in) {
  tnb::obs::Registry reg;

  std::vector<tnb::obs::CounterRef> counters;
  const std::size_t n_counters = static_cast<std::size_t>(in.uniform(1, 4));
  for (std::size_t i = 0; i < n_counters; ++i) {
    counters.push_back(
        reg.counter(arb_name(in, "c_") + std::to_string(i), "", arb_labels(in)));
    counters.back().inc(in.uniform(0, 1000));
  }
  tnb::obs::GaugeRef gauge = reg.gauge(arb_name(in, "g_"));
  gauge.set(static_cast<std::int64_t>(in.uniform(0, 2000)) - 1000);
  std::vector<double> bounds(static_cast<std::size_t>(in.uniform(1, 6)));
  double b = static_cast<double>(in.uniform(0, 10));
  for (auto& e : bounds) {
    b += static_cast<double>(in.uniform(1, 10));
    e = b;
  }
  tnb::obs::HistogramRef hist = reg.histogram(arb_name(in, "h_"), bounds);
  const std::size_t n_obs = static_cast<std::size_t>(in.uniform(0, 16));
  for (std::size_t i = 0; i < n_obs; ++i) {
    hist.observe(in.real(-5.0, 50.0));
  }

  tnb::promcheck::Report rep;
  std::istringstream s1(reg.snapshot().to_prometheus());
  const auto pf1 = tnb::promcheck::parse(s1, "snap1", rep);
  tnb::promcheck::check_file("snap1", pf1, rep);
  TNB_ORACLE(rep.ok(),
             "exporter output fails validation:" + join_failures(rep));
  TNB_ORACLE(!pf1.samples.empty(), "exporter emitted no samples");

  // Advance: counters and histogram only move up, the gauge moves freely.
  const std::uint64_t bump = in.uniform(1, 100);
  counters.front().inc(bump);
  gauge.set(static_cast<std::int64_t>(in.uniform(0, 2000)) - 1000);
  hist.observe(in.real(-5.0, 50.0));

  tnb::promcheck::Report rep2;
  std::istringstream s2(reg.snapshot().to_prometheus());
  const auto pf2 = tnb::promcheck::parse(s2, "snap2", rep2);
  tnb::promcheck::check_file("snap2", pf2, rep2);
  tnb::promcheck::check_monotonic("snap1", pf1, "snap2", pf2, rep2);
  TNB_ORACLE(rep2.ok(),
             "monotonic advance flagged as regression:" + join_failures(rep2));

  // The reversed order must be caught: counters.front() strictly grew.
  tnb::promcheck::Report rev;
  tnb::promcheck::check_monotonic("snap2", pf2, "snap1", pf1, rev);
  TNB_ORACLE(!rev.ok(), "counter regression went undetected");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  FuzzInput in(data, size);
  if (in.boolean()) {
    totality(in);
  } else {
    registry_round_trip(in);
  }
  return 0;
}
