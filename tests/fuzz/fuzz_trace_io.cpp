// Fuzz harness: sim::trace_io chunked reader. Arbitrary bytes (totality,
// truncated-tail flag vs legacy throwing contract, value-exactness against
// a reference little-endian decode) and int16-grid round trips at
// arbitrary chunk sizes.
#include <cstddef>
#include <cstdint>

#include "testing/oracles.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  tnb::testing::FuzzInput in(data, size);
  if (in.boolean()) {
    tnb::testing::oracle_trace_chunk_arbitrary(in);
  } else {
    tnb::testing::oracle_trace_roundtrip(in);
  }
  return 0;
}
