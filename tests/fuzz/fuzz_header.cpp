// Fuzz harness: lora::header. Round trips through nibbles/symbols/BEC,
// parser totality on arbitrary bytes, and the serializer's argument
// contract (rejects out-of-range SF/CR with the documented exception,
// never anything else).
#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "lora/header.hpp"
#include "testing/oracles.hpp"

namespace {

void serializer_contract(tnb::testing::FuzzInput& in) {
  tnb::lora::Header h;
  h.payload_len = in.u8();
  h.cr = static_cast<std::uint8_t>(in.uniform(0, 7));
  h.has_crc = in.boolean();
  const unsigned sf = static_cast<unsigned>(in.uniform(0, 16));
  const bool in_contract = sf >= 5 && h.cr >= 1 && h.cr <= 4;
  try {
    const auto nibbles = tnb::lora::header_to_nibbles(h, sf);
    TNB_ORACLE(in_contract, "serializer accepted out-of-contract args");
    TNB_ORACLE(nibbles.size() == sf, "nibble count != SF");
    const auto parsed = tnb::lora::header_from_nibbles(nibbles);
    TNB_ORACLE(parsed.has_value() && *parsed == h,
               "serializer output does not parse back");
  } catch (const std::invalid_argument&) {
    TNB_ORACLE(!in_contract, "serializer rejected in-contract args");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  tnb::testing::FuzzInput in(data, size);
  switch (in.u8() % 3) {
    case 0:
      tnb::testing::oracle_header_roundtrip(in);
      break;
    case 1:
      tnb::testing::oracle_header_parse_total(in);
      break;
    default:
      serializer_contract(in);
      break;
  }
  return 0;
}
