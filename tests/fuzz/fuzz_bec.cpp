// Fuzz harness: core::Bec. Arbitrary in-contract blocks (candidate-list
// invariants), corruption within the documented capability (original
// block must be recoverable), and packet-level decode_payload_bec
// (never accepts a CRC-failing payload, never exceeds the W budget).
#include <cstddef>
#include <cstdint>

#include "testing/oracles.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  tnb::testing::FuzzInput in(data, size);
  switch (in.u8() % 3) {
    case 0:
      tnb::testing::oracle_bec_arbitrary_block(in);
      break;
    case 1:
      tnb::testing::oracle_bec_correctable(in);
      break;
    default:
      tnb::testing::oracle_bec_packet(in);
      break;
  }
  return 0;
}
