// Fuzz harness: the coding chain (gray / whitening / interleaver /
// Hamming / CRC), from single-stage round trips up to full
// encode -> impair -> decode packets. First input byte selects the oracle
// so corpus seeds stay attached to one property.
#include <cstddef>
#include <cstdint>

#include "testing/oracles.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  tnb::testing::FuzzInput in(data, size);
  switch (in.u8() % 3) {
    case 0:
      tnb::testing::oracle_primitives_roundtrip(in);
      break;
    case 1:
      tnb::testing::oracle_coding_chain_roundtrip(in);
      break;
    default:
      tnb::testing::oracle_coding_chain_corrupted(in);
      break;
  }
  return 0;
}
