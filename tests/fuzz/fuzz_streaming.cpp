// Fuzz harness: stream ingestion. IstreamSource over torn byte streams
// (partial chunk + status, sticky end of stream) and the
// StreamingReceiver differential property: fuzz-chosen chunk boundaries
// must decode exactly the one-shot packet set.
#include <cstddef>
#include <cstdint>

#include "testing/oracles.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  tnb::testing::FuzzInput in(data, size);
  if (in.boolean()) {
    tnb::testing::oracle_chunk_source_truncation(in);
  } else {
    tnb::testing::oracle_streaming_chunk_invariance(in);
  }
  return 0;
}
