// Fuzz harness: dsp::FftBackend. Arbitrary pow2 sizes up to 2^15 on every
// registered backend (scalar always; avx2/avx512/neon/kissfft when built
// and supported): determinism, forward->inverse round-trip bound, and
// transform_batch bit-identity against per-row transforms.
#include <cstddef>
#include <cstdint>

#include "testing/oracles.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  tnb::testing::FuzzInput in(data, size);
  tnb::testing::oracle_fft_backend(in);
  return 0;
}
