// Fuzz harness: arbitrary impairment chains and traffic models through
// sim::build_trace — total (finite samples, length contract, in-trace
// ground truth) and bit-identical on a same-seed rebuild.
#include <cstddef>
#include <cstdint>

#include "testing/oracles.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  tnb::testing::FuzzInput in(data, size);
  tnb::testing::oracle_impairment_totality(in);
  return 0;
}
