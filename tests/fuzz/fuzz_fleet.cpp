// Fuzz harness: gateway fleet. The channelizer round trip (taps == 1
// analysis inverts mix_channels, chunking invariance, sticky sub-block
// tail — the IstreamSource torn-pair semantics one level up) and the fleet
// differential: multi-lane scheduling over arbitrary wideband IQ must
// reproduce the single-lane ledger entry for entry.
#include <cstddef>
#include <cstdint>

#include "testing/oracles.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  tnb::testing::FuzzInput in(data, size);
  if (in.boolean()) {
    tnb::testing::oracle_channelizer_roundtrip(in);
  } else {
    tnb::testing::oracle_fleet_differential(in);
  }
  return 0;
}
