// main() for the default (no fuzzing engine) build of every harness:
// drives LLVMFuzzerTestOneInput with the corpus + pinned-seed random
// inputs via the deterministic replay driver. Under -DTNB_FUZZ=ON this
// file is not compiled and libFuzzer provides main().
#include <cstddef>
#include <cstdint>

#include "testing/replay.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  return tnb::testing::replay_main(argc, argv, &LLVMFuzzerTestOneInput);
}
