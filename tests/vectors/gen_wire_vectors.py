#!/usr/bin/env python3
"""Golden wire-format reference vectors for tnb::wire (test_wire_golden).

An independent implementation of the gr-lora-sdr wire conventions — SX127x
whitening, payload CRC16, MSB-first variable-rate Hamming, the diagonal
interleaver, Gray +1 chirp mapping with reduced-rate blocks, and the
explicit header — kept deliberately separate from the C++ code so the two
can only agree by implementing the same spec. Regenerate wire_vectors.txt
with:  python3 gen_wire_vectors.py > wire_vectors.txt
"""
import random

# ----------------------------------------------------------------- whitening


def whitening_sequence(n):
    seq, s = [], 0xFF
    for _ in range(n):
        seq.append(s)
        fb = ((s >> 7) ^ (s >> 5) ^ (s >> 4) ^ (s >> 3)) & 1
        s = ((s << 1) | fb) & 0xFF
    return seq


def whiten(data):
    return [b ^ w for b, w in zip(data, whitening_sequence(len(data)))]


# --------------------------------------------------------------------- CRC16


def payload_crc16(data):
    def step(crc, byte):
        crc ^= byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ 0x1021 if crc & 0x8000 else crc << 1) & 0xFFFF
        return crc

    if len(data) < 2:
        crc = 0
        for b in data:
            crc = step(crc, b)
        return crc
    crc = 0
    for b in data[:-2]:
        crc = step(crc, b)
    # SX127x quirk: the last two bytes are XORed in raw.
    return crc ^ data[-1] ^ (data[-2] << 8)


# ------------------------------------------------------------------- Hamming


def hamming_encode(nibble, cr):
    n = nibble & 0xF
    d0, d1, d2, d3 = n & 1, (n >> 1) & 1, (n >> 2) & 1, (n >> 3) & 1
    if cr == 1:
        return (n << 1) | (d0 ^ d1 ^ d2 ^ d3)
    p0 = d3 ^ d2 ^ d1
    p1 = d2 ^ d1 ^ d0
    p2 = d3 ^ d2 ^ d0
    p3 = d3 ^ d1 ^ d0
    full8 = (n << 4) | (p0 << 3) | (p1 << 2) | (p2 << 1) | p3
    return full8 >> (4 - cr)


# --------------------------------------------------------------- interleaver


def interleave(rows, sf_app, cw_len):
    """Diagonal: symbol i bit j (MSB-first) = codeword (i-j-1) mod sf_app,
    bit i (MSB-first)."""
    symbols = [0] * cw_len
    for i in range(cw_len):
        for j in range(sf_app):
            r = (i - j - 1) % sf_app
            bit = (rows[r] >> (cw_len - 1 - i)) & 1
            symbols[i] |= bit << (sf_app - 1 - j)
    return symbols


# -------------------------------------------------------------- gray mapping


def gray_decode(v):
    x = v
    mask = v >> 1
    while mask:
        x ^= mask
        mask >>= 1
    return x


def shift_for_symbol(v, sf, reduced):
    g = gray_decode(v)
    shift = g * 4 + 1 if reduced else g + 1
    return shift & ((1 << sf) - 1)


# -------------------------------------------------------------------- header


def header_nibbles(length, cr, has_crc):
    n0 = (length >> 4) & 0xF
    n1 = length & 0xF
    n2 = ((cr & 7) << 1) | (1 if has_crc else 0)

    def bit(n, b):
        return (n >> b) & 1

    c4 = bit(n0, 3) ^ bit(n0, 2) ^ bit(n0, 1) ^ bit(n0, 0)
    c3 = bit(n0, 3) ^ bit(n1, 3) ^ bit(n1, 2) ^ bit(n1, 1) ^ bit(n2, 0)
    c2 = bit(n0, 2) ^ bit(n1, 3) ^ bit(n1, 0) ^ bit(n2, 3) ^ bit(n2, 1)
    c1 = bit(n0, 1) ^ bit(n1, 2) ^ bit(n1, 0) ^ bit(n2, 2) ^ bit(n2, 1) ^ bit(n2, 0)
    c0 = bit(n0, 0) ^ bit(n1, 1) ^ bit(n2, 3) ^ bit(n2, 2) ^ bit(n2, 1) ^ bit(n2, 0)
    return [n0, n1, n2, c4, (c3 << 3) | (c2 << 2) | (c1 << 1) | c0]


# ------------------------------------------------------------------- framing


def encode_frame(app, sf, cr, ldro, explicit):
    """App bytes -> raw chirp shifts (always with CRC16)."""
    sf_app0 = sf - 2 if sf >= 7 else sf
    reduced0 = sf >= 7
    rows_rest = sf - 2 if ldro else sf
    reduced_rest = ldro

    nibbles = []
    for b in whiten(app):
        nibbles.append(b & 0xF)
        nibbles.append((b >> 4) & 0xF)
    crc = payload_crc16(app)
    for s in (0, 4, 8, 12):
        nibbles.append((crc >> s) & 0xF)

    it = iter(nibbles)

    def take():
        return next(it, 0)

    shifts = []
    # Block 0: 8 symbols, CR 4/8, header rows first in explicit mode.
    rows = []
    if explicit:
        rows += [hamming_encode(n, 4) for n in header_nibbles(len(app), cr, True)]
    while len(rows) < sf_app0:
        rows.append(hamming_encode(take(), 4))
    shifts += [shift_for_symbol(v, sf, reduced0) for v in interleave(rows, sf_app0, 8)]

    # Rest blocks at the payload CR.
    nib_total = len(nibbles)
    nib0 = sf_app0 - (5 if explicit else 0)
    remaining = max(0, nib_total - nib0)
    blocks = (remaining + rows_rest - 1) // rows_rest
    for _ in range(blocks):
        rows = [hamming_encode(take(), cr) for _ in range(rows_rest)]
        shifts += [
            shift_for_symbol(v, sf, reduced_rest)
            for v in interleave(rows, rows_rest, 4 + cr)
        ]
    return shifts


CASES = [
    # (sf, cr, ldro, explicit, payload_len, seed)
    (7, 1, 0, 1, 14, 101),
    (7, 2, 0, 1, 14, 102),
    (7, 3, 0, 1, 14, 103),
    (7, 4, 0, 1, 14, 104),
    (8, 2, 0, 0, 14, 105),  # implicit header
    (5, 1, 0, 1, 9, 106),  # SF floor, no reduced-rate first block
    (6, 3, 0, 1, 20, 107),
    (12, 4, 1, 1, 14, 108),  # LDRO
    (9, 4, 0, 1, 1, 109),  # single-byte payload
    (10, 2, 0, 0, 32, 110),  # implicit, multi-block
]


def main():
    print("# tnb::wire golden vectors — generated by gen_wire_vectors.py")
    print("# record: params line, payload hex line, comma-separated raw shifts")
    for sf, cr, ldro, explicit, plen, seed in CASES:
        rng = random.Random(seed)
        app = [rng.randrange(256) for _ in range(plen)]
        shifts = encode_frame(app, sf, cr, ldro, explicit)
        print(f"sf={sf} cr={cr} ldro={ldro} implicit={0 if explicit else 1} has_crc=1")
        print("payload=" + "".join(f"{b:02x}" for b in app))
        print("shifts=" + ",".join(str(s) for s in shifts))


if __name__ == "__main__":
    main()
