#include "sim/ground_truth.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/rng.hpp"

namespace tnb::sim {
namespace {

TEST(Hex, RoundTrip) {
  std::vector<std::uint8_t> bytes{0x00, 0x0F, 0xAB, 0xFF};
  EXPECT_EQ(bytes_to_hex(bytes), "000fabff");
  EXPECT_EQ(hex_to_bytes("000fabff"), bytes);
  EXPECT_EQ(hex_to_bytes("000FABFF"), bytes);  // uppercase accepted
}

TEST(Hex, RejectsMalformed) {
  EXPECT_THROW(hex_to_bytes("abc"), std::runtime_error);
  EXPECT_THROW(hex_to_bytes("zz"), std::runtime_error);
  EXPECT_TRUE(hex_to_bytes("").empty());
}

TEST(GroundTruth, CsvRoundTrip) {
  Rng rng(1);
  std::vector<TxPacketRecord> packets(3);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    packets[i].node_id = static_cast<std::uint16_t>(i + 1);
    packets[i].seq = static_cast<std::uint16_t>(10 * i);
    packets[i].start_sample = 1234.5 + 1000.0 * static_cast<double>(i);
    packets[i].cfo_hz = -2500.0 + 100.0 * static_cast<double>(i);
    packets[i].snr_db = 7.25;
    packets[i].n_samples = 55555;
    packets[i].n_data_symbols = 40;
    packets[i].app_payload = make_app_payload(
        packets[i].node_id, packets[i].seq, 14, rng);
  }
  const std::string path = ::testing::TempDir() + "tnb_gt.csv";
  write_ground_truth_csv(path, packets);
  const auto back = read_ground_truth_csv(path);
  ASSERT_EQ(back.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(back[i].node_id, packets[i].node_id);
    EXPECT_EQ(back[i].seq, packets[i].seq);
    EXPECT_DOUBLE_EQ(back[i].start_sample, packets[i].start_sample);
    EXPECT_DOUBLE_EQ(back[i].cfo_hz, packets[i].cfo_hz);
    EXPECT_DOUBLE_EQ(back[i].snr_db, packets[i].snr_db);
    EXPECT_EQ(back[i].n_samples, packets[i].n_samples);
    EXPECT_EQ(back[i].n_data_symbols, packets[i].n_data_symbols);
    EXPECT_EQ(back[i].app_payload, packets[i].app_payload);
  }
  std::remove(path.c_str());
}

TEST(GroundTruth, RejectsBadHeader) {
  const std::string path = ::testing::TempDir() + "tnb_bad.csv";
  {
    std::ofstream out(path);
    out << "not,a,valid,header\n";
  }
  EXPECT_THROW(read_ground_truth_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(GroundTruth, MissingFileThrows) {
  EXPECT_THROW(read_ground_truth_csv("/nonexistent/gt.csv"), std::runtime_error);
  std::vector<TxPacketRecord> none;
  EXPECT_THROW(write_ground_truth_csv("/nonexistent/gt.csv", none),
               std::runtime_error);
}

TEST(GroundTruth, EmptyListRoundTrips) {
  const std::string path = ::testing::TempDir() + "tnb_empty_gt.csv";
  write_ground_truth_csv(path, {});
  EXPECT_TRUE(read_ground_truth_csv(path).empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tnb::sim
