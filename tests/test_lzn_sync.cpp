// LZnSync property tests (ISSUE 7): sync found iff a preamble exists,
// timing within +/-0.5 samples at high SNR, and totality on truncated /
// NaN traces (the PR-5 hardening conventions).
#include "baselines/lzn_sync.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "baselines/factories.hpp"
#include "channel/awgn.hpp"
#include "common/rng.hpp"
#include "lora/frame.hpp"
#include "lora/modulator.hpp"
#include "sim/metrics.hpp"
#include "sim/trace_builder.hpp"

namespace tnb::base {
namespace {

lora::Params fixture_params() {
  return lora::Params{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
}

IqBuffer make_single_packet_trace(const lora::Params& p, double t0,
                                  double cfo_hz, double amplitude,
                                  double frac_delay = 0.0) {
  const lora::Modulator mod(p);
  std::vector<std::uint8_t> app(12, 0xA5);
  lora::WaveformOptions w;
  w.cfo_hz = cfo_hz;
  w.amplitude = amplitude;
  w.frac_delay = frac_delay;
  const IqBuffer pkt = mod.synthesize(lora::make_packet_symbols(p, app), w);
  IqBuffer trace(static_cast<std::size_t>(t0) + pkt.size() + 8 * p.sps(),
                 cfloat{0.0f, 0.0f});
  for (std::size_t i = 0; i < pkt.size(); ++i) {
    trace[static_cast<std::size_t>(t0) + i] += pkt[i];
  }
  return trace;
}

TEST(LZnSync, FindsPreambleWhenPresent) {
  const lora::Params p = fixture_params();
  const double t0 = 5.0 * p.sps();
  Rng rng(21);
  IqBuffer trace = make_single_packet_trace(p, t0, 700.0, 1.0);
  chan::add_awgn(trace, 0.1, rng);
  LZnSync sync(p);
  const auto found = sync.sync(trace);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_NEAR(found[0].t0, t0, 2.0);  // coarse bound; precision test below
  EXPECT_NEAR(found[0].cfo_cycles, p.cfo_hz_to_cycles(700.0), 0.5);
  EXPECT_GE(found[0].validation_score, 8);
}

TEST(LZnSync, NoDetectionOnNoiseOnlyTrace) {
  const lora::Params p = fixture_params();
  Rng rng(22);
  IqBuffer trace(40 * p.sps(), cfloat{0.0f, 0.0f});
  chan::add_awgn(trace, 1.0, rng);
  LZnSync sync(p);
  EXPECT_TRUE(sync.sync(trace).empty());
}

TEST(LZnSync, NoDetectionOnSilentTrace) {
  const lora::Params p = fixture_params();
  const IqBuffer trace(40 * p.sps(), cfloat{0.0f, 0.0f});
  LZnSync sync(p);
  EXPECT_TRUE(sync.sync(trace).empty());
}

TEST(LZnSync, TimingWithinHalfSampleAtHighSnr) {
  const lora::Params p = fixture_params();
  LZnSync sync(p);
  for (double frac : {0.0, 0.25, 0.5}) {
    const double t0 = 6.0 * p.sps() + frac;
    IqBuffer trace =
        make_single_packet_trace(p, 6.0 * p.sps(), 400.0, 1.0, frac);
    Rng rng(23);
    chan::add_awgn(trace, 0.002, rng);  // ~ +50 dB: refinement-limited
    const auto found = sync.sync(trace);
    ASSERT_EQ(found.size(), 1u) << "frac_delay " << frac;
    EXPECT_NEAR(found[0].t0, t0, 0.5) << "frac_delay " << frac;
  }
}

TEST(LZnSync, TotalOnTruncatedTraces) {
  const lora::Params p = fixture_params();
  LZnSync sync(p);
  EXPECT_TRUE(sync.sync({}).empty());
  const IqBuffer tiny(p.sps() - 1, cfloat{0.1f, 0.0f});
  EXPECT_TRUE(sync.sync(tiny).empty());
  // A preamble cut off mid-way must not crash (and cannot validate).
  IqBuffer cut = make_single_packet_trace(p, 0.0, 0.0, 1.0);
  cut.resize(6 * p.sps());
  const auto found = sync.sync(cut);
  EXPECT_TRUE(found.empty());
}

TEST(LZnSync, TotalOnNanTraces) {
  const lora::Params p = fixture_params();
  LZnSync sync(p);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  // All-NaN trace.
  IqBuffer bad(30 * p.sps(), cfloat{nan, nan});
  for (const auto& d : sync.sync(bad)) {
    EXPECT_TRUE(std::isfinite(d.t0));
    EXPECT_TRUE(std::isfinite(d.cfo_cycles));
  }
  // A clean packet with a NaN burst elsewhere must not poison everything.
  IqBuffer trace = make_single_packet_trace(p, 20.0 * p.sps(), 300.0, 1.0);
  for (std::size_t i = 0; i < p.sps(); ++i) trace[i] = cfloat{nan, nan};
  for (const auto& d : sync.sync(trace)) {
    EXPECT_TRUE(std::isfinite(d.t0));
    EXPECT_TRUE(std::isfinite(d.cfo_cycles));
  }
}

TEST(LZnSync, SurfacesWeakPreambleUnderStrongCollider) {
  // The accumulation property: a weak preamble under a strong data-section
  // collider. LZn must report BOTH packets.
  const lora::Params p = fixture_params();
  const lora::Modulator mod(p);
  std::vector<std::uint8_t> app_a(18, 0x11), app_b(12, 0x22);
  lora::WaveformOptions wa, wb;
  wa.cfo_hz = 300.0;
  wa.amplitude = 1.0;
  wb.cfo_hz = -600.0;
  wb.amplitude = 0.3;
  const IqBuffer pa = mod.synthesize(lora::make_packet_symbols(p, app_a), wa);
  const IqBuffer pb = mod.synthesize(lora::make_packet_symbols(p, app_b), wb);
  const double t0_a = 4.0 * p.sps();
  // The weak preamble sits entirely inside the strong packet's payload.
  const double t0_b = t0_a + 16.0 * p.sps() + 0.4 * p.sps();
  IqBuffer trace(static_cast<std::size_t>(t0_b) + pb.size() + 8 * p.sps(),
                 cfloat{0.0f, 0.0f});
  for (std::size_t i = 0; i < pa.size(); ++i) {
    trace[static_cast<std::size_t>(t0_a) + i] += pa[i];
  }
  for (std::size_t i = 0; i < pb.size(); ++i) {
    trace[static_cast<std::size_t>(t0_b) + i] += pb[i];
  }
  Rng rng(24);
  chan::add_awgn(trace, 0.02, rng);
  LZnSync sync(p);
  const auto found = sync.sync(trace);
  ASSERT_GE(found.size(), 2u);
  bool got_a = false, got_b = false;
  for (const auto& d : found) {
    if (std::abs(d.t0 - t0_a) < 2.0) got_a = true;
    if (std::abs(d.t0 - t0_b) < 2.0) got_b = true;
  }
  EXPECT_TRUE(got_a);
  EXPECT_TRUE(got_b) << "weak collided preamble missed";
}

TEST(LZnSync, EndToEndThroughReceiverSeam) {
  // kLZnThrive routes detection through set_sync_factory; a clean packet
  // must decode end to end.
  const lora::Params p = fixture_params();
  sim::Trace trace;
  for (std::uint64_t seed = 5;; ++seed) {
    Rng rng(seed);
    sim::TraceOptions opt;
    opt.duration_s = 1.0;
    opt.load_pps = 3.0;
    opt.nodes = {{1, 20.0, 1200.0}};
    trace = sim::build_trace(p, opt, rng);
    bool clean = true;
    for (std::size_t i = 0; i < trace.packets.size(); ++i) {
      if (sim::collision_level(trace, i) > 0) clean = false;
    }
    if (clean) break;
    ASSERT_LT(seed, 50u) << "no collision-free seed found";
  }
  rx::Receiver r = make_receiver(Scheme::kLZnThrive, p);
  Rng rr(6);
  const auto decoded = r.decode(trace.iq, rr);
  EXPECT_EQ(sim::evaluate(trace, decoded).decoded_unique,
            trace.packets.size());
}

}  // namespace
}  // namespace tnb::base
