// Prometheus text-exposition validator, shared by the tnb_promcheck CLI
// and the fuzz/property harnesses (tests/fuzz/fuzz_promcheck.cpp).
//
// Deliberately a standalone parser — it shares no code with the obs
// exporter, so a serialization bug cannot hide in a common path; the
// round-trip oracle (Registry -> to_prometheus() -> this parser) only
// means something because the two sides are independent.
//
// Checks, per file:
//   - every sample line parses as `name{labels} value` with a finite value;
//   - every sample's family has a preceding # TYPE line (histogram series
//     suffixes _bucket/_sum/_count resolve to their family);
//   - sample keys (name + label set) are unique;
//   - counter samples are non-negative integers;
//   - histograms: cumulative buckets are non-decreasing in file order, end
//     with le="+Inf", and the +Inf bucket equals the _count sample.
// Across snapshots (check_monotonic): counter and histogram _count/_bucket
// samples never decrease — the monotonicity a scraper relies on.
#pragma once

#include <istream>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tnb::promcheck {

struct Sample {
  std::string name;    ///< series name (may carry _bucket/_sum/_count)
  std::string labels;  ///< raw label block, "" when absent
  double value = 0.0;
};

struct ParsedFile {
  std::map<std::string, std::string> types;  ///< family -> counter|gauge|...
  std::vector<Sample> samples;               ///< in file order
};

/// Collected violations; `where` is the file (or stream) name handed to the
/// parse/check calls, optionally with a line number appended.
struct Report {
  std::vector<std::string> failures;

  void fail(const std::string& where, const std::string& msg) {
    failures.push_back(where + ": " + msg);
  }
  bool ok() const { return failures.empty(); }
};

/// Strips a histogram series suffix (_bucket/_sum/_count) to the family.
std::string family_of(const std::string& series);

/// Extracts the value of label `key` from a raw label block, if present.
std::optional<std::string> label_value(const std::string& labels,
                                       const std::string& key);

/// Parses one exposition from `in`. Malformed lines are reported to `rep`
/// and skipped; the parse itself never fails, so arbitrary bytes always
/// yield a (possibly empty) ParsedFile.
ParsedFile parse(std::istream& in, const std::string& name, Report& rep);

/// Per-file semantic checks (uniqueness, TYPE coverage, counter integer-
/// ness, histogram bucket consistency).
void check_file(const std::string& name, const ParsedFile& pf, Report& rep);

/// Cross-snapshot monotonicity: counters and histogram counts/buckets in
/// `cur` must be >= their value in `prev`.
void check_monotonic(const std::string& prev_name, const ParsedFile& prev,
                     const std::string& name, const ParsedFile& cur,
                     Report& rep);

}  // namespace tnb::promcheck
