#include "promcheck_lib.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tnb::promcheck {

std::string family_of(const std::string& series) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::size_t n = std::strlen(suffix);
    if (series.size() > n &&
        series.compare(series.size() - n, n, suffix) == 0) {
      return series.substr(0, series.size() - n);
    }
  }
  return series;
}

std::optional<std::string> label_value(const std::string& labels,
                                       const std::string& key) {
  const std::string needle = key + "=\"";
  const std::size_t at = labels.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t start = at + needle.size();
  const std::size_t end = labels.find('"', start);
  if (end == std::string::npos) return std::nullopt;
  return labels.substr(start, end - start);
}

namespace {

/// The label block with the `le` pair removed — the histogram identity all
/// buckets of one series share.
std::string strip_le(const std::string& labels) {
  std::string out;
  if (labels.empty()) return out;
  std::string inner = labels.substr(1, labels.size() - 2);
  std::string kept;
  std::size_t pos = 0;
  while (pos < inner.size()) {
    // Label values are exporter-escaped and never contain a bare comma
    // followed by an identifier+'='; splitting on ',' is safe here.
    std::size_t end = inner.find("\",", pos);
    const std::string pair = end == std::string::npos
                                 ? inner.substr(pos)
                                 : inner.substr(pos, end - pos + 1);
    if (pair.compare(0, 4, "le=\"") != 0) {
      if (!kept.empty()) kept += ',';
      kept += pair;
    }
    if (end == std::string::npos) break;
    pos = end + 2;
  }
  return kept.empty() ? "" : "{" + kept + "}";
}

}  // namespace

ParsedFile parse(std::istream& in, const std::string& name, Report& rep) {
  ParsedFile pf;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string where = name + ":" + std::to_string(lineno);
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# TYPE <name> <kind>" / "# HELP <name> <text>"
      char tname[256], kind[64];
      if (std::sscanf(line.c_str(), "# TYPE %255s %63s", tname, kind) == 2) {
        if (pf.types.count(tname) != 0) {
          rep.fail(where, std::string("duplicate # TYPE for ") + tname);
        }
        pf.types[tname] = kind;
      }
      continue;
    }
    Sample s;
    const std::size_t brace = line.find('{');
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0) {
      rep.fail(where, "unparsable sample line: " + line);
      continue;
    }
    if (brace != std::string::npos && brace < sp) {
      const std::size_t close = line.rfind('}', sp);
      if (close == std::string::npos || close > sp || close < brace) {
        rep.fail(where, "unbalanced label braces: " + line);
        continue;
      }
      s.name = line.substr(0, brace);
      s.labels = line.substr(brace, close - brace + 1);
    } else {
      s.name = line.substr(0, sp);
    }
    char* endp = nullptr;
    s.value = std::strtod(line.c_str() + sp + 1, &endp);
    if (endp == line.c_str() + sp + 1 || !std::isfinite(s.value)) {
      rep.fail(where, "non-finite or unparsable value: " + line);
      continue;
    }
    pf.samples.push_back(std::move(s));
  }
  return pf;
}

void check_file(const std::string& name, const ParsedFile& pf, Report& rep) {
  std::map<std::string, double> seen;  ///< key -> value, uniqueness
  // Histogram running state, keyed by family + identity labels.
  struct HistState {
    double last_bucket = -1.0;
    bool saw_inf = false;
    double inf_value = 0.0;
  };
  std::map<std::string, HistState> hists;

  for (const Sample& s : pf.samples) {
    const std::string key = s.name + s.labels;
    if (!seen.emplace(key, s.value).second) {
      rep.fail(name, "duplicate sample key: " + key);
    }
    const std::string family = family_of(s.name);
    const auto type_it = pf.types.count(s.name) != 0 ? pf.types.find(s.name)
                                                     : pf.types.find(family);
    if (type_it == pf.types.end()) {
      rep.fail(name, "sample without # TYPE: " + key);
      continue;
    }
    const std::string& type = type_it->second;
    if (type == "counter") {
      if (s.value < 0.0 || s.value != std::floor(s.value)) {
        rep.fail(name, "counter not a non-negative integer: " + key);
      }
    } else if (type == "histogram") {
      const std::string id = family + strip_le(s.labels);
      HistState& h = hists[id];
      if (s.name == family + "_bucket") {
        const std::optional<std::string> le = label_value(s.labels, "le");
        if (!le.has_value()) {
          rep.fail(name, "histogram bucket without le label: " + key);
          continue;
        }
        if (h.saw_inf) rep.fail(name, "bucket after +Inf: " + key);
        if (s.value + 1e-9 < h.last_bucket) {
          rep.fail(name, "cumulative bucket decreases: " + key);
        }
        h.last_bucket = s.value;
        if (*le == "+Inf") {
          h.saw_inf = true;
          h.inf_value = s.value;
        }
      } else if (s.name == family + "_count") {
        if (!h.saw_inf) {
          rep.fail(name, "histogram _count before/without +Inf bucket: " + key);
        } else if (s.value != h.inf_value) {
          rep.fail(name, "histogram _count != +Inf bucket: " + key);
        }
      }
    }
  }
  for (const auto& [id, h] : hists) {
    if (!h.saw_inf) rep.fail(name, "histogram missing +Inf bucket: " + id);
  }
}

void check_monotonic(const std::string& prev_name, const ParsedFile& prev,
                     const std::string& name, const ParsedFile& cur,
                     Report& rep) {
  std::map<std::string, double> prev_values;
  for (const Sample& s : prev.samples) prev_values[s.name + s.labels] = s.value;
  for (const Sample& s : cur.samples) {
    const std::string family = family_of(s.name);
    const auto type_it = cur.types.count(s.name) != 0 ? cur.types.find(s.name)
                                                      : cur.types.find(family);
    if (type_it == cur.types.end()) continue;
    const bool monotonic =
        type_it->second == "counter" ||
        (type_it->second == "histogram" && s.name != family + "_sum");
    if (!monotonic) continue;
    const auto it = prev_values.find(s.name + s.labels);
    if (it == prev_values.end()) continue;
    if (s.value + 1e-9 < it->second) {
      rep.fail(name, "counter regressed vs " + prev_name + ": " + s.name +
                         s.labels + " " + std::to_string(it->second) + " -> " +
                         std::to_string(s.value));
    }
  }
}

}  // namespace tnb::promcheck
