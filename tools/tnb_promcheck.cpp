// tnb_promcheck — validator for the Prometheus text exposition written by
// tnb_streamd / tnb_eval (--metrics-file). The CI metrics-smoke job runs it
// on real daemon output; it is deliberately a standalone parser so a bug in
// the exporter cannot hide in a shared serialization path.
//
//   tnb_promcheck [--require SUBSTRING]... FILE...
//
// Checks, per file:
//   - every sample line parses as `name{labels} value` with a finite value;
//   - every sample's family has a preceding # TYPE line (histogram series
//     suffixes _bucket/_sum/_count resolve to their family);
//   - sample keys (name + label set) are unique;
//   - counter samples are non-negative integers;
//   - histograms: cumulative buckets are non-decreasing in file order, end
//     with le="+Inf", and the +Inf bucket equals the _count sample.
// Across files (given in chronological order): counter and histogram
// _count/_bucket samples never decrease — the monotonicity a scraper
// relies on. --require asserts a substring is present in every file.
//
// Exit status 0 = all checks pass; 1 = violation (printed to stderr);
// 2 = usage / unreadable file.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace {

struct Sample {
  std::string name;    ///< series name (may carry _bucket/_sum/_count)
  std::string labels;  ///< raw label block, "" when absent
  double value = 0.0;
};

struct ParsedFile {
  std::map<std::string, std::string> types;  ///< family -> counter|gauge|...
  std::vector<Sample> samples;               ///< in file order
};

int g_failures = 0;

void fail(const std::string& file, const std::string& msg) {
  std::fprintf(stderr, "tnb_promcheck: %s: %s\n", file.c_str(), msg.c_str());
  ++g_failures;
}

/// Strips a histogram series suffix to the family name.
std::string family_of(const std::string& series) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::size_t n = std::strlen(suffix);
    if (series.size() > n &&
        series.compare(series.size() - n, n, suffix) == 0) {
      return series.substr(0, series.size() - n);
    }
  }
  return series;
}

/// Extracts the value of label `key` from a raw label block, if present.
std::optional<std::string> label_value(const std::string& labels,
                                       const std::string& key) {
  const std::string needle = key + "=\"";
  const std::size_t at = labels.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t start = at + needle.size();
  const std::size_t end = labels.find('"', start);
  if (end == std::string::npos) return std::nullopt;
  return labels.substr(start, end - start);
}

/// The label block with the `le` pair removed — the histogram identity all
/// buckets of one series share.
std::string strip_le(const std::string& labels) {
  std::string out;
  if (labels.empty()) return out;
  std::string inner = labels.substr(1, labels.size() - 2);
  std::string kept;
  std::size_t pos = 0;
  while (pos < inner.size()) {
    // Label values are exporter-escaped and never contain a bare comma
    // followed by an identifier+'='; splitting on ',' is safe here.
    std::size_t end = inner.find("\",", pos);
    const std::string pair = end == std::string::npos
                                 ? inner.substr(pos)
                                 : inner.substr(pos, end - pos + 1);
    if (pair.compare(0, 4, "le=\"") != 0) {
      if (!kept.empty()) kept += ',';
      kept += pair;
    }
    if (end == std::string::npos) break;
    pos = end + 2;
  }
  return kept.empty() ? "" : "{" + kept + "}";
}

std::optional<ParsedFile> parse(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "tnb_promcheck: cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  ParsedFile pf;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string where = path + ":" + std::to_string(lineno);
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# TYPE <name> <kind>" / "# HELP <name> <text>"
      char name[256], kind[64];
      if (std::sscanf(line.c_str(), "# TYPE %255s %63s", name, kind) == 2) {
        if (pf.types.count(name) != 0) {
          fail(where, std::string("duplicate # TYPE for ") + name);
        }
        pf.types[name] = kind;
      }
      continue;
    }
    Sample s;
    const std::size_t brace = line.find('{');
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0) {
      fail(where, "unparsable sample line: " + line);
      continue;
    }
    if (brace != std::string::npos && brace < sp) {
      const std::size_t close = line.rfind('}', sp);
      if (close == std::string::npos || close > sp) {
        fail(where, "unbalanced label braces: " + line);
        continue;
      }
      s.name = line.substr(0, brace);
      s.labels = line.substr(brace, close - brace + 1);
    } else {
      s.name = line.substr(0, sp);
    }
    char* endp = nullptr;
    s.value = std::strtod(line.c_str() + sp + 1, &endp);
    if (endp == line.c_str() + sp + 1 || !std::isfinite(s.value)) {
      fail(where, "non-finite or unparsable value: " + line);
      continue;
    }
    pf.samples.push_back(std::move(s));
  }
  return pf;
}

void check_file(const std::string& path, const ParsedFile& pf) {
  std::map<std::string, double> seen;  ///< key -> value, uniqueness
  // Histogram running state, keyed by family + identity labels.
  struct HistState {
    double last_bucket = -1.0;
    bool saw_inf = false;
    double inf_value = 0.0;
  };
  std::map<std::string, HistState> hists;

  for (const Sample& s : pf.samples) {
    const std::string key = s.name + s.labels;
    if (!seen.emplace(key, s.value).second) {
      fail(path, "duplicate sample key: " + key);
    }
    const std::string family = family_of(s.name);
    const auto type_it =
        pf.types.count(s.name) != 0 ? pf.types.find(s.name) : pf.types.find(family);
    if (type_it == pf.types.end()) {
      fail(path, "sample without # TYPE: " + key);
      continue;
    }
    const std::string& type = type_it->second;
    if (type == "counter") {
      if (s.value < 0.0 || s.value != std::floor(s.value)) {
        fail(path, "counter not a non-negative integer: " + key);
      }
    } else if (type == "histogram") {
      const std::string id = family + strip_le(s.labels);
      HistState& h = hists[id];
      if (s.name == family + "_bucket") {
        const std::optional<std::string> le = label_value(s.labels, "le");
        if (!le.has_value()) {
          fail(path, "histogram bucket without le label: " + key);
          continue;
        }
        if (h.saw_inf) fail(path, "bucket after +Inf: " + key);
        if (s.value + 1e-9 < h.last_bucket) {
          fail(path, "cumulative bucket decreases: " + key);
        }
        h.last_bucket = s.value;
        if (*le == "+Inf") {
          h.saw_inf = true;
          h.inf_value = s.value;
        }
      } else if (s.name == family + "_count") {
        if (!h.saw_inf) {
          fail(path, "histogram _count before/without +Inf bucket: " + key);
        } else if (s.value != h.inf_value) {
          fail(path, "histogram _count != +Inf bucket: " + key);
        }
      }
    }
  }
  for (const auto& [id, h] : hists) {
    if (!h.saw_inf) fail(path, "histogram missing +Inf bucket: " + id);
  }
}

/// Counters and histogram counts/buckets must be non-decreasing across
/// successive snapshots of one process.
void check_monotonic(const std::string& prev_path, const ParsedFile& prev,
                     const std::string& path, const ParsedFile& cur) {
  std::map<std::string, double> prev_values;
  for (const Sample& s : prev.samples) prev_values[s.name + s.labels] = s.value;
  for (const Sample& s : cur.samples) {
    const std::string family = family_of(s.name);
    const auto type_it = cur.types.count(s.name) != 0 ? cur.types.find(s.name)
                                                      : cur.types.find(family);
    if (type_it == cur.types.end()) continue;
    const bool monotonic =
        type_it->second == "counter" ||
        (type_it->second == "histogram" && s.name != family + "_sum");
    if (!monotonic) continue;
    const auto it = prev_values.find(s.name + s.labels);
    if (it == prev_values.end()) continue;
    if (s.value + 1e-9 < it->second) {
      fail(path, "counter regressed vs " + prev_path + ": " + s.name +
                     s.labels + " " + std::to_string(it->second) + " -> " +
                     std::to_string(s.value));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::vector<std::string> required;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "usage: tnb_promcheck [--require SUBSTRING]... FILE...\n");
        return 2;
      }
      required.push_back(argv[++i]);
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "usage: tnb_promcheck [--require SUBSTRING]... FILE...\n");
    return 2;
  }

  std::optional<ParsedFile> prev;
  std::string prev_path;
  for (const std::string& path : files) {
    std::optional<ParsedFile> pf = parse(path);
    if (!pf.has_value()) return 2;
    check_file(path, *pf);
    for (const std::string& r : required) {
      std::ifstream in(path);
      const std::string content((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
      if (content.find(r) == std::string::npos) {
        fail(path, "missing required content: " + r);
      }
    }
    if (prev.has_value()) check_monotonic(prev_path, *prev, path, *pf);
    prev = std::move(pf);
    prev_path = path;
  }
  if (g_failures > 0) {
    std::fprintf(stderr, "tnb_promcheck: %d check(s) failed\n", g_failures);
    return 1;
  }
  std::printf("tnb_promcheck: %zu file(s) ok\n", files.size());
  return 0;
}
