// tnb_promcheck — CLI front end of the Prometheus exposition validator in
// promcheck_lib (shared with the fuzz/property harnesses). The CI
// metrics-smoke job runs it on real daemon output from tnb_streamd /
// tnb_eval (--metrics-file).
//
//   tnb_promcheck [--require SUBSTRING]... FILE...
//
// Per-file and cross-file checks are documented in promcheck_lib.hpp;
// files are given in chronological order so counter monotonicity can be
// checked across snapshots. --require asserts a substring is present in
// every file.
//
// Exit status 0 = all checks pass; 1 = violation (printed to stderr);
// 2 = usage / unreadable file.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "promcheck_lib.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::vector<std::string> required;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "usage: tnb_promcheck [--require SUBSTRING]... FILE...\n");
        return 2;
      }
      required.push_back(argv[++i]);
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "usage: tnb_promcheck [--require SUBSTRING]... FILE...\n");
    return 2;
  }

  tnb::promcheck::Report rep;
  std::optional<tnb::promcheck::ParsedFile> prev;
  std::string prev_path;
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "tnb_promcheck: cannot read %s\n", path.c_str());
      return 2;
    }
    tnb::promcheck::ParsedFile pf = tnb::promcheck::parse(in, path, rep);
    tnb::promcheck::check_file(path, pf, rep);
    for (const std::string& r : required) {
      std::ifstream again(path);
      const std::string content((std::istreambuf_iterator<char>(again)),
                                std::istreambuf_iterator<char>());
      if (content.find(r) == std::string::npos) {
        rep.fail(path, "missing required content: " + r);
      }
    }
    if (prev.has_value()) {
      tnb::promcheck::check_monotonic(prev_path, *prev, path, pf, rep);
    }
    prev = std::move(pf);
    prev_path = path;
  }
  if (!rep.ok()) {
    for (const std::string& f : rep.failures) {
      std::fprintf(stderr, "tnb_promcheck: %s\n", f.c_str());
    }
    std::fprintf(stderr, "tnb_promcheck: %zu check(s) failed\n",
                 rep.failures.size());
    return 1;
  }
  std::printf("tnb_promcheck: %zu file(s) ok\n", files.size());
  return 0;
}
