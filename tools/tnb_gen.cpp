// tnb_gen — generate a LoRa trace corpus: raw int16 IQ plus a CSV ground
// truth, in the paper artifact's trace format.
//
//   tnb_gen --out PREFIX [--deployment indoor|outdoor1|outdoor2|etu]
//           [--sf N] [--cr N] [--bw KHZ] [--osf N] [--load PPS]
//           [--duration S] [--seed N] [--antennas N]
//           [--channel none|epa|eva|etu] [--channels N] [--implicit]
//           [--wire-format] [--impair SPEC]... [--traffic NAME]
//           [--duty-cycle FRAC] [--sf-dist LIST]
//
// --wire-format encodes every packet with the gr-lora-sdr wire convention
// (tnb::wire — whitening, CR 4/5..4/8 Hamming, diagonal interleaving,
// explicit header + CRC16) instead of the paper format; decode the result
// with tnb_streamd/tnb_eval --wire-format. --bw selects the LoRa bandwidth
// in kHz (125, 250 or 500; default 125).
//
// --impair adds one hardware-impairment stage per flag, applied in flag
// order inside the synthesizer (tnb::impair): e.g.
//   --impair phase_noise,linewidth_hz=200 --impair quantize,bits=8
// Zero-severity stages are dropped, so the output is bit-identical to an
// unimpaired run. --traffic poisson|bursty|diurnal switches the flat
// even-split schedule to event arrivals at the same mean load;
// --duty-cycle caps each node's airtime fraction and --sf-dist (e.g.
// "7:0.5,8:0.3,9:0.2") assigns nodes an ADR-like SF mix — foreign-SF
// packets are synthesized as interference but excluded from the ground
// truth (both imply --traffic poisson when it is absent).
//
// Writes PREFIX.bin (antenna 0), PREFIX.ant1.bin... (extra antennas) and
// PREFIX.csv (ground truth).
//
// With --channels N > 1, generates independent traffic on each of N
// frequency channels and writes the interleaved wideband composite (rate
// N x OSF x BW) to PREFIX.bin plus one ground truth per channel,
// PREFIX.ch0.csv ... — the input format of `tnb_streamd --channels N`.
// The int16 scale is auto-reduced when the composite would clip; the
// chosen value is printed (pass it to tnb_streamd --scale).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "channel/tdl.hpp"
#include "common/rng.hpp"
#include "fleet/channelizer.hpp"
#include "sim/deployment.hpp"
#include "sim/ground_truth.hpp"
#include "sim/trace_builder.hpp"
#include "sim/trace_io.hpp"
#include "wire/wire_modulator.hpp"

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: tnb_gen --out PREFIX [--deployment NAME] [--sf N] "
               "[--cr N] [--bw KHZ] [--osf N]\n"
               "               [--load PPS] [--duration S] [--seed N] "
               "[--antennas N]\n"
               "               [--channel none|epa|eva|etu] [--channels N] "
               "[--implicit] [--wire-format]\n"
               "               [--impair SPEC]... [--traffic "
               "poisson|bursty|diurnal] [--duty-cycle FRAC]\n"
               "               [--sf-dist SF:W,SF:W,...]\n"
               "impair specs: %s\n",
               tnb::impair::impairment_cli_help().c_str());
  std::exit(2);
}

/// Parses an --sf-dist list "7:0.5,8:0.3,9:0.2".
std::vector<std::pair<unsigned, double>> parse_sf_dist(const char* spec) {
  std::vector<std::pair<unsigned, double>> weights;
  for (const char* p = spec; *p != '\0';) {
    char* end = nullptr;
    const unsigned long sf = std::strtoul(p, &end, 10);
    if (end == p || *end != ':') usage();
    p = end + 1;
    const double w = std::strtod(p, &end);
    if (end == p) usage();
    weights.emplace_back(static_cast<unsigned>(sf), w);
    p = *end == ',' ? end + 1 : end;
    if (*end != ',' && *end != '\0') usage();
  }
  if (weights.empty()) usage();
  return weights;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tnb;

  std::string out, deployment = "indoor", channel = "none";
  lora::Params params{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 8};
  double load = 10.0, duration = 2.0;
  std::uint64_t seed = 1;
  unsigned antennas = 1, n_channels = 1;
  bool implicit = false, wire_format = false;
  std::vector<impair::ImpairmentConfig> impairments;
  std::optional<sim::TrafficModel> traffic;
  double duty_cycle = 0.0;
  std::vector<std::pair<unsigned, double>> sf_dist;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--out") out = value();
    else if (arg == "--deployment") deployment = value();
    else if (arg == "--sf") params.sf = std::strtoul(value(), nullptr, 10);
    else if (arg == "--cr") params.cr = std::strtoul(value(), nullptr, 10);
    else if (arg == "--bw") params.bandwidth_hz = std::atof(value()) * 1e3;
    else if (arg == "--osf") params.osf = std::strtoul(value(), nullptr, 10);
    else if (arg == "--load") load = std::atof(value());
    else if (arg == "--duration") duration = std::atof(value());
    else if (arg == "--seed") seed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--antennas") antennas = std::strtoul(value(), nullptr, 10);
    else if (arg == "--channel") channel = value();
    else if (arg == "--channels")
      n_channels = std::strtoul(value(), nullptr, 10);
    else if (arg == "--implicit") implicit = true;
    else if (arg == "--wire-format") wire_format = true;
    else if (arg == "--impair") {
      try {
        impairments.push_back(impair::parse_impairment(value()));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "tnb_gen: %s\n", e.what());
        return 2;
      }
    }
    else if (arg == "--traffic") {
      try {
        traffic = sim::parse_traffic(value());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "tnb_gen: %s\n", e.what());
        return 2;
      }
    }
    else if (arg == "--duty-cycle") duty_cycle = std::atof(value());
    else if (arg == "--sf-dist") sf_dist = parse_sf_dist(value());
    else usage();
  }
  if (out.empty()) usage();
  if (duty_cycle > 0.0 || !sf_dist.empty()) {
    if (!traffic.has_value()) traffic = sim::parse_traffic("poisson");
    traffic->duty_cycle = duty_cycle;
    traffic->sf_weights = sf_dist;
    try {
      traffic->validate();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "tnb_gen: %s\n", e.what());
      return 2;
    }
  }

  sim::Deployment dep;
  if (deployment == "indoor") dep = sim::indoor_deployment();
  else if (deployment == "outdoor1") dep = sim::outdoor1_deployment();
  else if (deployment == "outdoor2") dep = sim::outdoor2_deployment();
  else if (deployment == "etu") dep = sim::etu_deployment(params.sf);
  else usage();

  std::unique_ptr<chan::TdlChannel> tdl;
  if (channel == "epa") tdl = std::make_unique<chan::TdlChannel>(chan::epa_profile(), 5.0);
  else if (channel == "eva") tdl = std::make_unique<chan::TdlChannel>(chan::eva_profile(), 5.0);
  else if (channel == "etu") tdl = std::make_unique<chan::TdlChannel>(chan::etu_profile(), 5.0);
  else if (channel != "none") usage();

  Rng rng(seed);
  sim::TraceOptions opt;
  opt.duration_s = duration;
  opt.load_pps = load;
  opt.nodes = dep.draw_nodes(rng);
  opt.channel = tdl.get();
  opt.n_antennas = antennas;
  opt.implicit_header = implicit;
  opt.traffic = traffic;
  opt.impairments = impairments;
  if (wire_format) {
    std::optional<rx::ImplicitHeader> ih;
    if (implicit) {
      ih = rx::ImplicitHeader{
          static_cast<std::uint8_t>(opt.app_payload_bytes + 2),
          static_cast<std::uint8_t>(params.cr)};
    }
    const auto wmod = std::make_shared<wire::WireModulator>(params, ih);
    opt.shift_encoder = [wmod](std::span<const std::uint8_t> app) {
      return wmod->shifts(app);
    };
  }

  if (n_channels > 1) {
    if (antennas != 1) {
      std::fprintf(stderr, "tnb_gen: --channels excludes --antennas\n");
      return 2;
    }
    const auto traces =
        sim::build_multichannel_traces(params, opt, n_channels, rng);
    std::vector<IqBuffer> per_channel;
    per_channel.reserve(traces.size());
    std::size_t total_packets = 0;
    for (const auto& t : traces) per_channel.push_back(t.iq);
    const IqBuffer wideband = fleet::mix_channels(per_channel, n_channels);
    float peak = 0.0f;
    for (const cfloat& v : wideband) {
      peak = std::max({peak, std::abs(v.real()), std::abs(v.imag())});
    }
    double wb_scale = 1024.0;
    if (peak * wb_scale > 30000.0) wb_scale = 30000.0 / peak;
    sim::write_trace_i16(out + ".bin", wideband, wb_scale);
    for (unsigned c = 0; c < n_channels; ++c) {
      sim::write_ground_truth_csv(
          out + ".ch" + std::to_string(c) + ".csv", traces[c].packets);
      total_packets += traces[c].packets.size();
    }
    std::printf("wrote %s.bin (%zu wideband samples, %u channels) and "
                "%s.ch*.csv (%zu packets)\n",
                out.c_str(), wideband.size(), n_channels, out.c_str(),
                total_packets);
    std::printf("deployment=%s sf=%u cr=%u osf=%u load=%.1f duration=%.1f "
                "channels=%u scale=%.1f seed=%llu\n",
                dep.name.c_str(), params.sf, params.cr, params.osf, load,
                duration, n_channels, wb_scale,
                static_cast<unsigned long long>(seed));
    return 0;
  }

  const sim::Trace trace = sim::build_trace(params, opt, rng);

  sim::write_trace_i16(out + ".bin", trace.iq);
  for (std::size_t a = 0; a < trace.extra_antennas.size(); ++a) {
    sim::write_trace_i16(out + ".ant" + std::to_string(a + 1) + ".bin",
                         trace.extra_antennas[a]);
  }
  sim::write_ground_truth_csv(out + ".csv", trace.packets);

  std::printf("wrote %s.bin (%zu samples, %u antenna(s)) and %s.csv "
              "(%zu packets)\n",
              out.c_str(), trace.iq.size(), antennas, out.c_str(),
              trace.packets.size());
  std::printf("deployment=%s sf=%u cr=%u osf=%u load=%.1f duration=%.1f "
              "channel=%s seed=%llu\n",
              dep.name.c_str(), params.sf, params.cr, params.osf, load,
              duration, channel.c_str(),
              static_cast<unsigned long long>(seed));
  if (traffic.has_value()) {
    std::printf("traffic=%s duty_cycle=%g foreign_sf_packets=%zu "
                "duty_dropped=%zu\n",
                sim::arrivals_name(traffic->arrivals), traffic->duty_cycle,
                trace.n_foreign, trace.duty_dropped);
  }
  for (const impair::ImpairmentConfig& cfg : impairments) {
    std::printf("impair %s\n", cfg.to_string().c_str());
  }
  return 0;
}
