// tnb_streamd — live gateway pipeline daemon: decode an int16 IQ stream
// (file or stdin) continuously with bounded memory.
//
//   tnb_streamd [--in FILE] [--sf N] [--cr N] [--bw KHZ] [--osf N]
//               [--scale S] [--chunk SAMPLES] [--window SYMBOLS]
//               [--ring SAMPLES] [--stats-interval SECONDS]
//               [--metrics-file FILE] [--metrics-history PREFIX]
//               [--realtime] [--drop] [--implicit-len BYTES] [--seed N]
//               [--quiet] [--wire-format]
//               [--channels N] [--sfs LIST] [--lanes J] [--taps N]
//               [--impair SPEC]... [--impair-seed N]
//
// --impair degrades the incoming stream before the ring with receiver-side
// tnb::impair stages (iq_imbalance, quantize, clock_drift), in flag order,
// state carried across chunks — the same specs tnb_gen takes. Synthesis-
// side stages (phase_noise, doppler, inter_sf) are rejected; apply those
// with tnb_gen --impair. --impair-seed (default 1) seeds the chain's RNG.
// Single-channel only: the wideband composite of --channels N runs at a
// different rate than the per-channel chain models.
//
// --wire-format decodes with the gr-lora-sdr wire convention (tnb::wire)
// instead of the paper frame format — the counterpart of tnb_gen
// --wire-format, and what real gateway captures use. It composes with the
// fleet flags (every lane gets a wire codec) and with --implicit-len.
// --bw selects the LoRa bandwidth in kHz (125/250/500; default 125).
//
// --channels N > 1 switches to the gateway-fleet pipeline (tnb::fleet):
// the input is an interleaved N-channel wideband stream at N x OSF x BW
// (the format tnb_gen --channels writes), split by the polyphase
// channelizer into per-channel streams and decoded by one StreamingReceiver
// lane per (channel, SF in --sfs) on --lanes workers. Decoded packets
// print (with channel/SF tags) from the merged ledger after the stream
// ends, in the canonical (t0, channel) order; the periodic `stats` line
// carries FleetStats::to_json plus the ring counters. The single-channel
// path is untouched by these flags.
//
// Without --in (or with `--in -`) samples are read from stdin, so a trace
// can be piped straight through:  tnb_gen ... && tnb_streamd < trace.bin
//
// A producer thread feeds the SPSC ring buffer (blocking backpressure by
// default; --drop switches to the radio-front-end policy of dropping
// what does not fit); the main thread drains the ring into the
// StreamingReceiver. Every decoded packet prints one `pkt` line as soon as
// its segment resolves; a `stats` JSON line (StreamingStats::to_json plus
// the ring counters) prints every --stats-interval seconds of stream time
// and once at the end. --metrics-file rewrites a Prometheus text snapshot
// of the tnb::obs registry (stage timings, ring and stream counters) on
// every stats tick and at exit; --metrics-history PREFIX additionally
// keeps every snapshot as PREFIX.NNN.prom (CI uses the sequence to verify
// counter monotonicity). --realtime paces file replay at the sample rate.
//
// SIGINT/SIGTERM trigger a clean shutdown: the ring is closed (remaining
// producer samples are counted as dropped), the pipeline winds down, and
// the final stats line and metrics file are always emitted before exit.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "dsp/fft_backend.hpp"
#include "fleet/fleet.hpp"
#include "impair/impairment.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/trace_builder.hpp"
#include "stream/impaired_source.hpp"
#include "stream/streaming_receiver.hpp"
#include "wire/wire_codec.hpp"

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: tnb_streamd [--in FILE|-] [--sf N] [--cr N] [--bw KHZ] "
               "[--osf N] [--scale S]\n"
               "                   [--chunk SAMPLES] [--window SYMBOLS] "
               "[--ring SAMPLES]\n"
               "                   [--stats-interval SECONDS] "
               "[--metrics-file FILE]\n"
               "                   [--metrics-history PREFIX] [--realtime] "
               "[--drop]\n"
               "                   [--implicit-len BYTES] [--seed N] "
               "[--quiet] [--wire-format]\n"
               "                   [--channels N] [--sfs LIST] [--lanes J] "
               "[--taps N] [--fft-backend NAME]\n"
               "                   [--impair SPEC]... [--impair-seed N]\n"
               "impair specs (receiver-side): %s\n",
               tnb::impair::impairment_cli_help().c_str());
  std::exit(2);
}

// Shared between the main thread and the signal-watcher thread. Static
// duration so the watcher can consult them even while main() is returning.
std::mutex g_stats_mu;
std::atomic<bool> g_done{false};  ///< final stats line already emitted

}  // namespace

int main(int argc, char** argv) {
  using namespace tnb;

  std::string in = "-";
  std::string metrics_file, metrics_history;
  lora::Params params{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 8};
  double scale = 1024.0, stats_interval_s = 1.0;
  std::size_t chunk = 0, ring_capacity = 0;
  stream::StreamingOptions sopt;
  bool realtime = false, drop = false, quiet = false, wire_format = false;
  int implicit_len = 0;
  unsigned n_channels = 1, taps = 1;
  int lanes = 1;
  std::vector<unsigned> fleet_sfs;
  std::vector<impair::ImpairmentConfig> impairments;
  std::uint64_t impair_seed = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--in") in = value();
    else if (arg == "--sf") params.sf = std::strtoul(value(), nullptr, 10);
    else if (arg == "--cr") params.cr = std::strtoul(value(), nullptr, 10);
    else if (arg == "--bw") params.bandwidth_hz = std::atof(value()) * 1e3;
    else if (arg == "--osf") params.osf = std::strtoul(value(), nullptr, 10);
    else if (arg == "--scale") scale = std::atof(value());
    else if (arg == "--chunk") chunk = std::strtoul(value(), nullptr, 10);
    else if (arg == "--window")
      sopt.window_symbols = std::strtoul(value(), nullptr, 10);
    else if (arg == "--ring") ring_capacity = std::strtoul(value(), nullptr, 10);
    else if (arg == "--stats-interval" || arg == "--stats-every")
      stats_interval_s = std::atof(value());  // --stats-every: legacy alias
    else if (arg == "--metrics-file") metrics_file = value();
    else if (arg == "--metrics-history") metrics_history = value();
    else if (arg == "--realtime") realtime = true;
    else if (arg == "--drop") drop = true;
    else if (arg == "--implicit-len") implicit_len = std::atoi(value());
    else if (arg == "--seed") sopt.rng_seed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--wire-format") wire_format = true;
    else if (arg == "--channels")
      n_channels = std::strtoul(value(), nullptr, 10);
    else if (arg == "--sfs") {
      // Comma-separated list, e.g. --sfs 7,8,9.
      for (const char* p = value(); *p != '\0';) {
        char* end = nullptr;
        const unsigned long sf = std::strtoul(p, &end, 10);
        if (end == p) usage();
        fleet_sfs.push_back(static_cast<unsigned>(sf));
        p = *end == ',' ? end + 1 : end;
        if (*end != ',' && *end != '\0') usage();
      }
      if (fleet_sfs.empty()) usage();
    }
    else if (arg == "--lanes") lanes = std::atoi(value());
    else if (arg == "--taps") taps = std::strtoul(value(), nullptr, 10);
    else if (arg == "--impair") {
      try {
        impairments.push_back(impair::parse_impairment(value()));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "tnb_streamd: %s\n", e.what());
        return 2;
      }
    }
    else if (arg == "--impair-seed")
      impair_seed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--fft-backend") {
      const char* name = value();
      if (!dsp::set_fft_backend(name)) {
        std::fprintf(stderr,
                     "tnb_streamd: unknown fft backend '%s' (valid: %s)\n",
                     name, dsp::fft_backend_names().c_str());
        return 2;
      }
    }
    else usage();
  }
  params.validate();
  const bool fleet_mode = n_channels > 1;
  if (!impairments.empty() && fleet_mode) {
    std::fprintf(stderr,
                 "tnb_streamd: --impair is single-channel only (the wideband "
                 "composite runs at a different sample rate)\n");
    return 2;
  }
  if (chunk == 0) chunk = 16 * params.sps() * (fleet_mode ? n_channels : 1);
  if (ring_capacity == 0) ring_capacity = 8 * chunk;

  // The registry must be installed before the receiver and ring are
  // constructed: their metric handles resolve against the global exactly
  // once, at construction.
  obs::Registry registry;
  obs::Registry::set_global(&registry);

  rx::ReceiverOptions ropt;
  if (implicit_len > 0) {
    ropt.implicit_header =
        rx::ImplicitHeader{static_cast<std::uint8_t>(implicit_len),
                           static_cast<std::uint8_t>(params.cr)};
  }
  if (wire_format) ropt.codec_factory = wire::wire_codec_factory();
  sopt.keep_packets = false;  // a daemon must not grow with uptime

  const double fs = params.sample_rate_hz();   // channel rate
  const double in_rate = fs * n_channels;      // input stream rate

  std::optional<stream::StreamingReceiver> receiver;
  std::unique_ptr<fleet::Fleet> gw;
  if (fleet_mode) {
    fleet::FleetOptions fopt;
    fopt.n_channels = n_channels;
    fopt.sfs = fleet_sfs.empty() ? std::vector<unsigned>{params.sf}
                                 : fleet_sfs;
    fopt.lanes = lanes;
    fopt.taps = taps;
    fopt.stream = sopt;
    fopt.receiver = ropt;
    try {
      gw = std::make_unique<fleet::Fleet>(params, fopt);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "tnb_streamd: %s\n", e.what());
      return 2;
    }
  } else {
    receiver.emplace(params, ropt, sopt);
    receiver->set_packet_callback([&](const sim::DecodedPacket& pkt) {
      if (quiet) return;
      std::uint16_t node = 0, seq = 0;
      if (sim::parse_app_payload(pkt.payload, node, seq)) {
        std::printf(
            "pkt t=%.4fs node=%u seq=%u snr=%.1fdB cfo=%.0fHz len=%zu\n",
            pkt.start_sample / fs, node, seq, pkt.snr_db, pkt.cfo_hz,
            pkt.payload.size());
      } else {
        std::printf("pkt t=%.4fs snr=%.1fdB cfo=%.0fHz len=%zu payload=",
                    pkt.start_sample / fs, pkt.snr_db, pkt.cfo_hz,
                    pkt.payload.size());
        for (std::uint8_t b : pkt.payload) std::printf("%02x", b);
        std::printf("\n");
      }
      std::fflush(stdout);
    });
  }

  std::unique_ptr<stream::ChunkSource> source;
  if (in == "-") {
    std::ios::sync_with_stdio(false);
    source = std::make_unique<stream::IstreamSource>(std::cin, scale);
  } else {
    source = std::make_unique<stream::FileReplaySource>(
        in, scale, realtime ? in_rate : 0.0);
  }
  if (!impairments.empty()) {
    try {
      source = std::make_unique<stream::ImpairedSource>(
          std::move(source), impairments, params, impair_seed, &registry);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "tnb_streamd: %s\n", e.what());
      return 2;
    }
  }

  stream::IqRing ring(ring_capacity);
  const std::size_t stats_interval_samples =
      stats_interval_s > 0.0
          ? static_cast<std::size_t>(stats_interval_s * in_rate)
          : 0;
  std::size_t next_stats_at = stats_interval_samples;

  // Both emitters are called with g_stats_mu held.
  auto print_stats = [&] {
    const stream::RingStats rs = ring.stats();
    obs::JsonWriter w;
    w.begin_object();
    // Before the "stream" key: the decode-ab-diff CI job extracts the
    // stats object from "stream" onward, so the backend label must not
    // land inside the compared span.
    w.field("fft_backend", dsp::active_fft_backend().name());
    if (fleet_mode) {
      w.key("fleet").raw(gw->stats().to_json());
    } else {
      w.key("stream").raw(receiver->stats().to_json());
    }
    w.key("ring");
    w.begin_object();
    w.field("capacity", static_cast<std::uint64_t>(rs.capacity));
    w.field("pushed", static_cast<std::uint64_t>(rs.pushed));
    w.field("popped", static_cast<std::uint64_t>(rs.popped));
    w.field("dropped", static_cast<std::uint64_t>(rs.dropped));
    w.field("high_water", static_cast<std::uint64_t>(rs.high_water));
    w.end_object();
    w.end_object();
    std::printf("stats %s\n", w.str().c_str());
    std::fflush(stdout);
  };
  std::size_t metrics_seq = 0;
  auto write_metrics = [&] {
    if (metrics_file.empty() && metrics_history.empty()) return;
    const std::string text = registry.snapshot().to_prometheus();
    auto write_file = [](const std::string& path, const std::string& body) {
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "tnb_streamd: cannot write %s\n", path.c_str());
        return false;
      }
      std::fwrite(body.data(), 1, body.size(), f);
      std::fclose(f);
      return true;
    };
    if (!metrics_file.empty()) {
      // Write-then-rename so a concurrent reader never sees a torn file.
      const std::string tmp = metrics_file + ".tmp";
      if (write_file(tmp, text) &&
          std::rename(tmp.c_str(), metrics_file.c_str()) != 0) {
        std::fprintf(stderr, "tnb_streamd: cannot rename %s\n", tmp.c_str());
      }
    }
    if (!metrics_history.empty()) {
      char seq[16];
      std::snprintf(seq, sizeof seq, ".%03zu.prom", metrics_seq++);
      write_file(metrics_history + seq, text);
    }
  };

  // Block SIGINT/SIGTERM in every thread and field them in a dedicated
  // watcher via sigwait. The watcher closes the ring, which unwinds the
  // pipeline cleanly (pop drains and returns 0, push counts the rest as
  // dropped), so the normal end-of-run path below emits the final stats
  // line and metrics file. Only if the pipeline fails to wind down (e.g.
  // the producer is stuck in a blocking read on an idle terminal) does the
  // watcher emit them best-effort itself and exit.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);
  std::thread([&ring, &print_stats, &write_metrics, sigs] {
    int sig = 0;
    if (sigwait(&sigs, &sig) != 0) return;
    ring.close();
    for (int i = 0; i < 100; ++i) {  // up to 5 s for a clean wind-down
      if (g_done.load()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::lock_guard<std::mutex> lock(g_stats_mu);
    if (g_done.load()) return;
    print_stats();
    write_metrics();
    std::fflush(nullptr);
    std::_Exit(0);
  }).detach();

  const auto on_chunk = [&](std::size_t consumed) {
    if (stats_interval_samples == 0) return;
    if (consumed >= next_stats_at) {
      std::lock_guard<std::mutex> lock(g_stats_mu);
      print_stats();
      write_metrics();
      next_stats_at = consumed + stats_interval_samples;
    }
  };
  try {
    if (fleet_mode) {
      fleet::run_fleet_pipeline(*source, ring, *gw, chunk,
                                /*backpressure=*/!drop, on_chunk);
    } else {
      stream::run_pipeline(*source, ring, *receiver, chunk,
                           /*backpressure=*/!drop, on_chunk);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tnb_streamd: %s\n", e.what());
    return 1;
  }

  {
    std::lock_guard<std::mutex> lock(g_stats_mu);
    std::size_t decoded = 0;
    if (fleet_mode) {
      // The ledger freezes at finish(); print it in its canonical
      // (t0, channel) order — identical for every lane count.
      for (const auto& e : gw->ledger()) {
        ++decoded;
        if (quiet) continue;
        std::uint16_t node = 0, seq = 0;
        if (sim::parse_app_payload(e.pkt.payload, node, seq)) {
          std::printf(
              "pkt t=%.4fs ch=%u sf=%u node=%u seq=%u snr=%.1fdB "
              "cfo=%.0fHz len=%zu\n",
              e.t0 / fs, e.channel, e.sf, node, seq, e.pkt.snr_db,
              e.pkt.cfo_hz, e.pkt.payload.size());
        } else {
          std::printf("pkt t=%.4fs ch=%u sf=%u snr=%.1fdB cfo=%.0fHz "
                      "len=%zu payload=",
                      e.t0 / fs, e.channel, e.sf, e.pkt.snr_db, e.pkt.cfo_hz,
                      e.pkt.payload.size());
          for (std::uint8_t b : e.pkt.payload) std::printf("%02x", b);
          std::printf("\n");
        }
      }
    } else {
      decoded = receiver->stats().packets_emitted;
    }
    print_stats();
    write_metrics();
    std::printf("decoded=%zu\n", decoded);
    g_done.store(true);
  }
  return 0;
}
