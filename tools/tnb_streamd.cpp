// tnb_streamd — live gateway pipeline daemon: decode an int16 IQ stream
// (file or stdin) continuously with bounded memory.
//
//   tnb_streamd [--in FILE] [--sf N] [--cr N] [--osf N] [--scale S]
//               [--chunk SAMPLES] [--window SYMBOLS] [--ring SAMPLES]
//               [--stats-every SECONDS] [--realtime] [--drop]
//               [--implicit-len BYTES] [--seed N] [--quiet]
//
// Without --in (or with `--in -`) samples are read from stdin, so a trace
// can be piped straight through:  tnb_gen ... && tnb_streamd < trace.bin
//
// A producer thread feeds the SPSC ring buffer (blocking backpressure by
// default; --drop switches to the radio-front-end policy of dropping
// what does not fit); the main thread drains the ring into the
// StreamingReceiver. Every decoded packet prints one `pkt` line as soon as
// its segment resolves; a `stats` JSON line (StreamingStats::to_json plus
// the ring counters) prints every --stats-every seconds of stream time and
// once at the end. --realtime paces file replay at the sample rate.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "sim/trace_builder.hpp"
#include "stream/streaming_receiver.hpp"

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: tnb_streamd [--in FILE|-] [--sf N] [--cr N] [--osf N] "
               "[--scale S]\n"
               "                   [--chunk SAMPLES] [--window SYMBOLS] "
               "[--ring SAMPLES]\n"
               "                   [--stats-every SECONDS] [--realtime] "
               "[--drop]\n"
               "                   [--implicit-len BYTES] [--seed N] "
               "[--quiet]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tnb;

  std::string in = "-";
  lora::Params params{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 8};
  double scale = 1024.0, stats_every_s = 1.0;
  std::size_t chunk = 0, ring_capacity = 0;
  stream::StreamingOptions sopt;
  bool realtime = false, drop = false, quiet = false;
  int implicit_len = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--in") in = value();
    else if (arg == "--sf") params.sf = std::strtoul(value(), nullptr, 10);
    else if (arg == "--cr") params.cr = std::strtoul(value(), nullptr, 10);
    else if (arg == "--osf") params.osf = std::strtoul(value(), nullptr, 10);
    else if (arg == "--scale") scale = std::atof(value());
    else if (arg == "--chunk") chunk = std::strtoul(value(), nullptr, 10);
    else if (arg == "--window")
      sopt.window_symbols = std::strtoul(value(), nullptr, 10);
    else if (arg == "--ring") ring_capacity = std::strtoul(value(), nullptr, 10);
    else if (arg == "--stats-every") stats_every_s = std::atof(value());
    else if (arg == "--realtime") realtime = true;
    else if (arg == "--drop") drop = true;
    else if (arg == "--implicit-len") implicit_len = std::atoi(value());
    else if (arg == "--seed") sopt.rng_seed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--quiet") quiet = true;
    else usage();
  }
  params.validate();
  if (chunk == 0) chunk = 16 * params.sps();
  if (ring_capacity == 0) ring_capacity = 8 * chunk;

  rx::ReceiverOptions ropt;
  if (implicit_len > 0) {
    ropt.implicit_header =
        rx::ImplicitHeader{static_cast<std::uint8_t>(implicit_len),
                           static_cast<std::uint8_t>(params.cr)};
  }
  sopt.keep_packets = false;  // a daemon must not grow with uptime

  stream::StreamingReceiver receiver(params, ropt, sopt);
  const double fs = params.sample_rate_hz();
  receiver.set_packet_callback([&](const sim::DecodedPacket& pkt) {
    if (quiet) return;
    std::uint16_t node = 0, seq = 0;
    if (sim::parse_app_payload(pkt.payload, node, seq)) {
      std::printf("pkt t=%.4fs node=%u seq=%u snr=%.1fdB cfo=%.0fHz len=%zu\n",
                  pkt.start_sample / fs, node, seq, pkt.snr_db, pkt.cfo_hz,
                  pkt.payload.size());
    } else {
      std::printf("pkt t=%.4fs snr=%.1fdB cfo=%.0fHz len=%zu payload=",
                  pkt.start_sample / fs, pkt.snr_db, pkt.cfo_hz,
                  pkt.payload.size());
      for (std::uint8_t b : pkt.payload) std::printf("%02x", b);
      std::printf("\n");
    }
    std::fflush(stdout);
  });

  std::unique_ptr<stream::ChunkSource> source;
  if (in == "-") {
    std::ios::sync_with_stdio(false);
    source = std::make_unique<stream::IstreamSource>(std::cin, scale);
  } else {
    source = std::make_unique<stream::FileReplaySource>(
        in, scale, realtime ? fs : 0.0);
  }

  stream::IqRing ring(ring_capacity);
  const std::size_t stats_every_samples =
      stats_every_s > 0.0 ? static_cast<std::size_t>(stats_every_s * fs) : 0;
  std::size_t next_stats_at = stats_every_samples;
  auto print_stats = [&] {
    const stream::RingStats rs = ring.stats();
    std::printf("stats {\"stream\":%s,\"ring\":{\"capacity\":%zu,"
                "\"pushed\":%zu,\"popped\":%zu,\"dropped\":%zu,"
                "\"high_water\":%zu}}\n",
                receiver.stats().to_json().c_str(), rs.capacity, rs.pushed,
                rs.popped, rs.dropped, rs.high_water);
    std::fflush(stdout);
  };

  try {
    stream::run_pipeline(*source, ring, receiver, chunk, /*backpressure=*/!drop,
                         [&](std::size_t consumed) {
                           if (stats_every_samples == 0) return;
                           if (consumed >= next_stats_at) {
                             print_stats();
                             next_stats_at = consumed + stats_every_samples;
                           }
                         });
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tnb_streamd: %s\n", e.what());
    return 1;
  }

  print_stats();
  std::printf("decoded=%zu\n", receiver.stats().packets_emitted);
  return 0;
}
