// tnb_eval — decode a trace corpus produced by tnb_gen and score every
// scheme against the ground truth.
//
//   tnb_eval --in PREFIX [--sf N] [--cr N] [--osf N]
//            [--scheme tnb|thrive|sibling|lorophy|cic|cic+|aligntrack|
//                      aligntrack+|all]
//            [--antennas N] [--implicit-len BYTES]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/factories.hpp"
#include "baselines/sic.hpp"
#include "common/rng.hpp"
#include "sim/ground_truth.hpp"
#include "sim/metrics.hpp"
#include "sim/trace_io.hpp"

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: tnb_eval --in PREFIX [--sf N] [--cr N] [--osf N] "
               "[--scheme NAME|all]\n"
               "                [--antennas N] [--implicit-len BYTES]\n");
  std::exit(2);
}

std::vector<tnb::base::Scheme> parse_schemes(const std::string& name) {
  using tnb::base::Scheme;
  if (name == "all") return tnb::base::all_schemes();
  if (name == "tnb") return {Scheme::kTnB};
  if (name == "thrive") return {Scheme::kThrive};
  if (name == "sibling") return {Scheme::kSibling};
  if (name == "loraphy") return {Scheme::kLoRaPhy};
  if (name == "cic") return {Scheme::kCic};
  if (name == "cic+") return {Scheme::kCicBec};
  if (name == "aligntrack") return {Scheme::kAlignTrack};
  if (name == "aligntrack+") return {Scheme::kAlignTrackBec};
  usage();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tnb;

  std::string in, scheme = "tnb";
  lora::Params params{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 8};
  unsigned antennas = 1;
  int implicit_len = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--in") in = value();
    else if (arg == "--sf") params.sf = std::strtoul(value(), nullptr, 10);
    else if (arg == "--cr") params.cr = std::strtoul(value(), nullptr, 10);
    else if (arg == "--osf") params.osf = std::strtoul(value(), nullptr, 10);
    else if (arg == "--scheme") scheme = value();
    else if (arg == "--antennas") antennas = std::strtoul(value(), nullptr, 10);
    else if (arg == "--implicit-len") implicit_len = std::atoi(value());
    else usage();
  }
  if (in.empty()) usage();

  sim::Trace trace;
  trace.params = params;
  trace.iq = sim::read_trace_i16(in + ".bin");
  for (unsigned a = 1; a < antennas; ++a) {
    trace.extra_antennas.push_back(
        sim::read_trace_i16(in + ".ant" + std::to_string(a) + ".bin"));
  }
  trace.packets = sim::read_ground_truth_csv(in + ".csv");
  std::printf("trace: %zu samples, %zu ground-truth packets\n",
              trace.iq.size(), trace.packets.size());

  std::printf("%-14s %10s %8s %8s %8s\n", "scheme", "decoded", "PRR",
              "false", "2nd-pass");
  if (scheme == "sic") {
    // Extension baseline (mLoRa-style), not part of the paper's set.
    base::SicDecoder sic(params);
    Rng rng(7);
    const auto decoded = sic.decode(trace.iq, rng);
    const auto result = sim::evaluate(trace, decoded);
    std::printf("%-14s %6zu/%-3zu %8.2f %8zu %8s\n", "SIC",
                result.decoded_unique, result.transmitted, result.prr,
                result.false_packets, "-");
    return 0;
  }
  for (base::Scheme s : parse_schemes(scheme)) {
    std::optional<rx::ImplicitHeader> implicit;
    if (implicit_len > 0) {
      implicit = rx::ImplicitHeader{static_cast<std::uint8_t>(implicit_len),
                                    static_cast<std::uint8_t>(params.cr)};
    }
    rx::Receiver receiver = base::make_receiver(s, params, implicit);
    Rng rng(7);
    rx::ReceiverStats stats;
    const auto decoded =
        receiver.decode_multi(trace.antenna_spans(), rng, &stats);
    const auto result = sim::evaluate(trace, decoded);
    std::printf("%-14s %6zu/%-3zu %8.2f %8zu %8zu\n",
                base::scheme_name(s).c_str(), result.decoded_unique,
                result.transmitted, result.prr, result.false_packets,
                stats.decoded_second_pass);
  }
  return 0;
}
