// tnb_eval — decode a trace corpus produced by tnb_gen and score every
// scheme against the ground truth.
//
//   tnb_eval --in PREFIX [--sf N] [--cr N] [--bw KHZ] [--osf N]
//            [--scheme tnb|thrive|sibling|lorophy|cic|cic+|aligntrack|
//                      aligntrack+|all]
//            [--antennas N] [--implicit-len BYTES] [--jobs N]
//            [--metrics-file FILE] [--wire-format]
//            [--impair SPEC]... [--impair-seed N]
//
// --impair degrades the trace before decoding with receiver-side
// tnb::impair stages (iq_imbalance, quantize, clock_drift) or injects
// inter_sf interference, in flag order — the same specs tnb_gen takes.
// Transmitter-side stages (phase_noise, doppler) need packet boundaries
// and are rejected here; apply them at synthesis with tnb_gen --impair.
// --impair-seed (default 1) seeds the chain's own RNG.
//
// --wire-format decodes with the gr-lora-sdr wire convention (tnb::wire)
// instead of the paper frame format — for corpora written by
// tnb_gen --wire-format. Orthogonal to --scheme: every scheme keeps its
// assigner/sync/decoder, only the frame coding changes.
//
// --jobs N (default: TNB_JOBS env var, else 1) decodes the schemes
// concurrently; each scheme keeps its own RNG and stats, so the printed
// rows are identical for every jobs value. Per-stage pipeline timing is
// recorded into a tnb::obs registry (merged over all schemes and jobs)
// and summarized after the result table; --metrics-file additionally
// writes the full Prometheus text snapshot.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "baselines/factories.hpp"
#include "baselines/sic.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "dsp/fft_backend.hpp"
#include "impair/impairment.hpp"
#include "obs/stage_timer.hpp"
#include "sim/ground_truth.hpp"
#include "sim/metrics.hpp"
#include "sim/trace_io.hpp"
#include "wire/wire_codec.hpp"

namespace {

[[noreturn]] void usage() {
  // The scheme list comes from base::all_schemes() so a new scheme in the
  // factory automatically shows up here (and in parse errors below).
  std::fprintf(stderr,
               "usage: tnb_eval --in PREFIX [--sf N] [--cr N] [--bw KHZ] "
               "[--osf N] [--scheme NAME|all]\n"
               "                [--antennas N] [--implicit-len BYTES] "
               "[--jobs N]\n"
               "                [--metrics-file FILE] [--wire-format] "
               "[--fft-backend NAME]\n"
               "                [--impair SPEC]... [--impair-seed N]\n"
               "schemes: %s, sic, all\n"
               "fft backends: %s (default: TNB_FFT_BACKEND env var, else "
               "scalar)\n"
               "impair specs (receiver-side): %s\n",
               tnb::base::scheme_cli_list().c_str(),
               tnb::dsp::fft_backend_names().c_str(),
               tnb::impair::impairment_cli_help().c_str());
  std::exit(2);
}

std::vector<tnb::base::Scheme> parse_schemes(const std::string& name) {
  if (name == "all") return tnb::base::all_schemes();
  if (const auto s = tnb::base::parse_scheme(name)) return {*s};
  std::fprintf(stderr, "tnb_eval: unknown scheme '%s' (valid: %s, sic, all)\n",
               name.c_str(), tnb::base::scheme_cli_list().c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tnb;

  std::string in, scheme = "tnb", metrics_file;
  lora::Params params{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 8};
  unsigned antennas = 1;
  int implicit_len = 0;
  bool wire_format = false;
  int jobs = common::default_jobs();
  std::vector<impair::ImpairmentConfig> impairments;
  std::uint64_t impair_seed = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--in") in = value();
    else if (arg == "--sf") params.sf = std::strtoul(value(), nullptr, 10);
    else if (arg == "--cr") params.cr = std::strtoul(value(), nullptr, 10);
    else if (arg == "--bw") params.bandwidth_hz = std::atof(value()) * 1e3;
    else if (arg == "--osf") params.osf = std::strtoul(value(), nullptr, 10);
    else if (arg == "--scheme") scheme = value();
    else if (arg == "--antennas") antennas = std::strtoul(value(), nullptr, 10);
    else if (arg == "--implicit-len") implicit_len = std::atoi(value());
    else if (arg == "--wire-format") wire_format = true;
    else if (arg == "--jobs") jobs = std::atoi(value());
    else if (arg == "--impair") {
      try {
        impairments.push_back(impair::parse_impairment(value()));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "tnb_eval: %s\n", e.what());
        return 2;
      }
    }
    else if (arg == "--impair-seed")
      impair_seed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--metrics-file") metrics_file = value();
    else if (arg == "--fft-backend") {
      const char* name = value();
      if (!dsp::set_fft_backend(name)) {
        std::fprintf(stderr, "tnb_eval: unknown fft backend '%s' (valid: %s)\n",
                     name, dsp::fft_backend_names().c_str());
        return 2;
      }
    }
    else usage();
  }
  if (in.empty()) usage();
  if (jobs < 1) jobs = 1;

  // Installed before any receiver is constructed (handles resolve at
  // construction); all schemes and worker threads record into it.
  obs::Registry registry;
  obs::Registry::set_global(&registry);

  sim::Trace trace;
  trace.params = params;
  trace.iq = sim::read_trace_i16(in + ".bin");
  for (unsigned a = 1; a < antennas; ++a) {
    trace.extra_antennas.push_back(
        sim::read_trace_i16(in + ".ant" + std::to_string(a) + ".bin"));
  }
  trace.packets = sim::read_ground_truth_csv(in + ".csv");

  if (!impairments.empty()) {
    try {
      impair::Pipeline chain(impairments, params, &registry);
      if (chain.has_per_packet()) {
        std::fprintf(stderr,
                     "tnb_eval: phase_noise/doppler are transmitter-side; "
                     "apply them with tnb_gen --impair\n");
        return 2;
      }
      std::vector<IqBuffer*> antenna_bufs{&trace.iq};
      for (IqBuffer& a : trace.extra_antennas) antenna_bufs.push_back(&a);
      Rng impair_rng(impair_seed);
      chain.apply_trace(antenna_bufs, impair_rng);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "tnb_eval: %s\n", e.what());
      return 2;
    }
  }
  std::printf("trace: %zu samples, %zu ground-truth packets\n",
              trace.iq.size(), trace.packets.size());

  std::printf("%-14s %10s %8s %8s %8s\n", "scheme", "decoded", "PRR",
              "false", "2nd-pass");
  if (scheme == "sic") {
    // Extension baseline (mLoRa-style), not part of the paper's set.
    base::SicDecoder sic(params);
    Rng rng(7);
    const auto decoded = sic.decode(trace.iq, rng);
    const auto result = sim::evaluate(trace, decoded);
    std::printf("%-14s %6zu/%-3zu %8.2f %8zu %8s\n", "SIC",
                result.decoded_unique, result.transmitted, result.prr,
                result.false_packets, "-");
    return 0;
  }

  const std::vector<base::Scheme> schemes = parse_schemes(scheme);
  struct Row {
    sim::EvalResult result;
    rx::ReceiverStats stats;
    double wall_s = 0.0;
  };
  std::vector<Row> rows(schemes.size());

  // Each scheme decode is independent (own receiver, own RNG, own stats):
  // fan them out and print the rows in scheme order afterwards, so the
  // output is identical for every --jobs value.
  const auto t0 = std::chrono::steady_clock::now();
  common::parallel_for(schemes.size(), jobs, [&](std::size_t i) {
    const auto t_run = std::chrono::steady_clock::now();
    std::optional<rx::ImplicitHeader> implicit;
    if (implicit_len > 0) {
      implicit = rx::ImplicitHeader{static_cast<std::uint8_t>(implicit_len),
                                    static_cast<std::uint8_t>(params.cr)};
    }
    rx::Receiver receiver = base::make_receiver(
        schemes[i], params, implicit,
        wire_format ? wire::wire_codec_factory() : rx::CodecFactory{});
    Rng rng(7);
    const auto decoded =
        receiver.decode_multi(trace.antenna_spans(), rng, &rows[i].stats);
    rows[i].result = sim::evaluate(trace, decoded);
    rows[i].wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t_run)
            .count();
  });
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  rx::ReceiverStats total;
  double seq = 0.0;
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    const Row& row = rows[i];
    std::printf("%-14s %6zu/%-3zu %8.2f %8zu %8zu\n",
                base::scheme_name(schemes[i]).c_str(),
                row.result.decoded_unique, row.result.transmitted,
                row.result.prr, row.result.false_packets,
                row.stats.decoded_second_pass);
    total += row.stats;
    seq += row.wall_s;
  }
  // Same merged-stats JSON schema as tnb_streamd's stats line (the shared
  // ReceiverStats::to_json format, documented in DESIGN.md).
  std::printf("aggregate %s\n", total.to_json().c_str());
  // The runs= line is excluded from the decode-ab-diff comparison, so the
  // backend name (and timing) may vary without breaking the bit-identity
  // gate on the result rows above.
  std::printf("runs=%zu jobs=%d wall=%.2fs speedup=%.2fx fft_backend=%s\n",
              schemes.size(), jobs, wall, wall > 0.0 ? seq / wall : 1.0,
              dsp::active_fft_backend().name());

  // Per-stage pipeline timing, merged over every scheme (seconds). All
  // seven stages are registered eagerly, so a stage a scheme never enters
  // still prints, as n=0.
  const obs::Snapshot snap = registry.snapshot();
  for (const obs::Snapshot::Metric& m : snap.metrics) {
    if (m.name != obs::kStageMetricName) continue;
    const char* stage = m.labels.empty() ? "?" : m.labels.front().second.c_str();
    std::printf("stage %-12s %s\n", stage, obs::histogram_summary(m).c_str());
  }
  if (!metrics_file.empty()) {
    std::ofstream out(metrics_file);
    if (!out) {
      std::fprintf(stderr, "tnb_eval: cannot write %s\n", metrics_file.c_str());
      return 1;
    }
    out << snap.to_prometheus();
  }
  return 0;
}
