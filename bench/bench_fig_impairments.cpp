// Extension figure: PRR vs impairment severity and traffic model, all
// schemes. Not a paper figure — the paper evaluates on clean synthesized
// traces; this sweep quantifies how much margin each scheme keeps under
// the tnb::impair hardware models (phase noise, IQ imbalance, ADC
// quantization, sample-clock drift, inter-SF interference, Doppler) and
// under the tnb::sim traffic models (Poisson, bursty MMPP, diurnal, duty
// cycle, ADR SF mix).
//
// One trace per (impairment, severity) cell, then (cell x scheme) decode
// cells fan out over --jobs with results in pre-sized slots: identical
// output for every jobs value. TNB_BENCH_FULL=1 adds the middle severity
// step of each sweep.
#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "impair/impairment.hpp"

using namespace tnb;

namespace {

struct Cell {
  std::string label;  ///< first column of the printed row
  std::vector<impair::ImpairmentConfig> impairments;
  std::optional<sim::TrafficModel> traffic;
  sim::Trace trace;
};

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Impairments & traffic: PRR vs severity, all schemes",
      "extension (DESIGN.md section 15); not a paper figure");
  const int jobs = bench::parse_jobs(argc, argv);
  const bool full = bench::full_mode();
  const double load = 10.0;
  const std::vector<base::Scheme> schemes = base::all_schemes();
  const lora::Params params{.sf = 8, .cr = 4, .bandwidth_hz = 125e3,
                            .osf = 8};

  std::vector<Cell> cells;
  auto add = [&](std::string label, const char* spec_csv) {
    Cell c;
    c.label = std::move(label);
    if (spec_csv != nullptr && spec_csv[0] != '\0') {
      c.impairments.push_back(impair::parse_impairment(spec_csv));
    }
    cells.push_back(std::move(c));
  };
  auto add_traffic = [&](std::string label, sim::TrafficModel tm) {
    Cell c;
    c.label = std::move(label);
    c.traffic = std::move(tm);
    cells.push_back(std::move(c));
  };

  // Severity ladders, mild -> severe; TNB_BENCH_FULL=1 adds the middle
  // step. Every impair::Kind appears at least twice.
  add("unimpaired", "");
  add("phase_noise lw=100Hz", "phase_noise,linewidth_hz=100");
  if (full) add("phase_noise lw=1kHz", "phase_noise,linewidth_hz=1000");
  add("phase_noise lw=10kHz", "phase_noise,linewidth_hz=10000");
  add("iq gain=0.5dB ph=2deg", "iq_imbalance,gain_db=0.5,phase_deg=2");
  if (full) add("iq gain=1dB ph=5deg", "iq_imbalance,gain_db=1,phase_deg=5");
  add("iq gain=3dB ph=15deg", "iq_imbalance,gain_db=3,phase_deg=15");
  add("quantize bits=12", "quantize,bits=12");
  if (full) add("quantize bits=8", "quantize,bits=8");
  add("quantize bits=6", "quantize,bits=6");
  add("clock_drift 10ppm", "clock_drift,ppm=10");
  if (full) add("clock_drift 50ppm", "clock_drift,ppm=50");
  add("clock_drift 200ppm", "clock_drift,ppm=200");
  add("inter_sf sf=10 2pps", "inter_sf,sf=10,pps=2");
  if (full) add("inter_sf sf=10 5pps", "inter_sf,sf=10,pps=5");
  add("inter_sf sf=10 10pps", "inter_sf,sf=10,pps=10");
  add("doppler 100Hz", "doppler,hz=100");
  if (full) add("doppler 500Hz", "doppler,hz=500");
  add("doppler 2kHz", "doppler,hz=2000");

  // Traffic models at the same mean load as the even-split baseline.
  add_traffic("traffic poisson", sim::parse_traffic("poisson"));
  add_traffic("traffic bursty", sim::parse_traffic("bursty"));
  add_traffic("traffic diurnal", sim::parse_traffic("diurnal"));
  {
    sim::TrafficModel duty = sim::parse_traffic("poisson");
    duty.duty_cycle = 0.1;  // ~2 packet airtimes per node on a short trace
    add_traffic("traffic duty=10%", duty);
    sim::TrafficModel adr = sim::parse_traffic("poisson");
    adr.sf_weights = {{8u, 0.7}, {10u, 0.3}};
    add_traffic("traffic sf 8:.7,10:.3", adr);
  }

  // Phase 1: one trace per cell. Each cell seeds its own Rng, so the
  // traces are identical for every jobs value.
  const sim::Deployment dep = sim::indoor_deployment();
  common::parallel_for(cells.size(), jobs, [&](std::size_t c) {
    Rng rng(4200 + c);
    sim::TraceOptions opt;
    opt.duration_s = bench::trace_duration();
    opt.load_pps = load;
    opt.nodes = dep.draw_nodes(rng);
    opt.impairments = cells[c].impairments;
    opt.traffic = cells[c].traffic;
    cells[c].trace = sim::build_trace(params, opt, rng);
  });

  // Phase 2: flat (cell, scheme) grid.
  bench::ObsScope obs;
  auto cell_hist = obs.cell_seconds();
  std::vector<std::vector<bench::SchemeResult>> results(
      cells.size(), std::vector<bench::SchemeResult>(schemes.size()));
  bench::WallTimer wt;
  common::parallel_for(cells.size() * schemes.size(), jobs,
                       [&](std::size_t k) {
                         const std::size_t c = k / schemes.size();
                         const std::size_t s = k % schemes.size();
                         bench::WallTimer cell_t;
                         results[c][s] = bench::run_scheme(
                             schemes[s], params, cells[c].trace);
                         cell_hist.observe(cell_t.seconds());
                       });

  std::printf("\nSF %u, load %.0f pkt/s, %.0f s traces\n%-24s", params.sf,
              load, bench::trace_duration(), "condition");
  for (const base::Scheme s : schemes) {
    std::printf(" %-12s", base::scheme_name(s).c_str());
  }
  std::printf("\n");
  for (std::size_t c = 0; c < cells.size(); ++c) {
    std::printf("%-24s", cells[c].label.c_str());
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      std::printf(" %-12.2f", results[c][s].eval.prr);
    }
    if (cells[c].trace.n_foreign > 0 || cells[c].trace.duty_dropped > 0) {
      std::printf(" (foreign_sf=%zu duty_dropped=%zu)",
                  cells[c].trace.n_foreign, cells[c].trace.duty_dropped);
    }
    std::printf("\n");
  }
  std::printf("\n(expected: PRR falls along the phase_noise and clock_drift "
              "ladders; IQ\n imbalance and slow Doppler are nearly free "
              "(dechirp + CFO tracking absorb\n them); bursty traffic sits "
              "below poisson at equal mean load)\n");
  bench::print_obs_summary(obs.registry().snapshot(),
                           cells.size() * schemes.size(), jobs, wt.seconds());
  return 0;
}
