// Fig. 8: the Q(dt, df) objective of the fractional synchronizer for one
// packet, plus the gated Q* along the phase-2 lines.
#include <cstdio>

#include "bench_util.hpp"
#include "channel/awgn.hpp"
#include "core/frac_sync.hpp"
#include "lora/frame.hpp"
#include "lora/modulator.hpp"

using namespace tnb;

int main() {
  bench::print_header("Fig. 8: Q() and Q*() of a packet", "paper Fig. 8");
  lora::Params p{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 8};

  // A packet with known fractional timing (0.3 samples) and CFO (+0.37
  // cycles beyond the coarse estimate), lightly noisy.
  const double true_dt = 0.3, true_df = 0.37;
  Rng rng(5);
  const lora::Modulator mod(p);
  std::vector<std::uint8_t> app(14, 0x5A);
  const auto symbols = lora::make_packet_symbols(p, app);
  lora::WaveformOptions wopt;
  wopt.frac_delay = true_dt;
  wopt.cfo_hz = p.cfo_cycles_to_hz(true_df);
  const IqBuffer pkt = mod.synthesize(symbols, wopt);
  IqBuffer trace(pkt.size() + 8 * p.sps(), cfloat{0.0f, 0.0f});
  const std::size_t t0 = 2 * p.sps();
  for (std::size_t i = 0; i < pkt.size(); ++i) trace[t0 + i] += pkt[i];
  chan::add_awgn(trace, 0.5, rng);

  const rx::FracSync fs(p);

  std::printf("Q(dt, df) surface (rows: dt in receiver samples; cols: df in "
              "cycles):\n%8s", "");
  const int df_steps = bench::full_mode() ? 16 : 8;
  for (int j = 0; j <= df_steps; ++j) {
    std::printf("%8.2f", -1.0 + 2.0 * j / df_steps);
  }
  std::printf("\n");
  for (int i = -2; i <= 2; ++i) {
    const double dt = i / 2.0;
    std::printf("%8.2f", dt);
    for (int j = 0; j <= df_steps; ++j) {
      const double df = -1.0 + 2.0 * j / df_steps;
      const double q = fs.q(trace, static_cast<double>(t0), 0.0, dt, df, false);
      std::printf("%8.0f", q / 1e3);
    }
    std::printf("\n");
  }

  std::printf("\nQ*(0, df) along the df line (zero where the peaks leave "
              "location 1):\n");
  for (int j = 0; j <= df_steps; ++j) {
    const double df = -1.0 + 2.0 * j / df_steps;
    std::printf("  df=%6.2f  Q*=%-12.0f Q=%.0f\n", df,
                fs.q(trace, static_cast<double>(t0), 0.0, 0.0, df, true),
                fs.q(trace, static_cast<double>(t0), 0.0, 0.0, df, false));
  }

  const rx::FracSyncResult r = fs.refine(trace, static_cast<double>(t0), 0.0);
  std::printf("\n3-phase search found dt=%.3f (true %.1f), df=%.3f (true "
              "%.2f), gated=%d\n",
              r.dt, true_dt, r.df, true_df, r.gated ? 1 : 0);
  return 0;
}
