// Fig. 20: decoding error probability of BEC at CR 4 with 3 error columns —
// closed-form analysis (Lemma 4) vs Monte-Carlo simulation, across SF.
//
// The Monte-Carlo lives in core/bec_montecarlo (shared with
// bench_table1_bec_capability and pinned by test_golden_bec).
#include <cstdio>

#include "bench_util.hpp"
#include "core/bec_analysis.hpp"
#include "core/bec_montecarlo.hpp"

using namespace tnb;

int main() {
  bench::print_header(
      "Fig. 20: CR4 3-error-column decoding error probability",
      "paper Fig. 20");
  const int trials = bench::full_mode() ? 40000 : 8000;
  Rng rng(20);

  std::printf("%-4s %-12s %-12s\n", "SF", "analysis", "simulation");
  for (unsigned sf = 7; sf <= 12; ++sf) {
    const double analytic = rx::bec_cr4_3col_error_probability(sf);
    const rx::BecMcResult r = rx::bec_capability_mc(sf, 4, 3, trials, rng);
    const int fails = r.trials - r.ok_bec;
    std::printf("%-4u %-12.5f %-12.5f\n", sf, analytic,
                static_cast<double>(fails) / trials);
  }
  std::printf("\n(paper: <0.04 at SF 7, decreasing with SF; analysis and "
              "simulation reasonably close)\n");
  return 0;
}
