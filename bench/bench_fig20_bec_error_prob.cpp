// Fig. 20: decoding error probability of BEC at CR 4 with 3 error columns —
// closed-form analysis (Lemma 4) vs Monte-Carlo simulation, across SF.
#include <cstdio>
#include <set>

#include "bench_util.hpp"
#include "core/bec.hpp"
#include "core/bec_analysis.hpp"
#include "lora/hamming.hpp"

using namespace tnb;

int main() {
  bench::print_header(
      "Fig. 20: CR4 3-error-column decoding error probability",
      "paper Fig. 20");
  const int trials = bench::full_mode() ? 40000 : 8000;
  Rng rng(20);

  std::printf("%-4s %-12s %-12s\n", "SF", "analysis", "simulation");
  for (unsigned sf = 7; sf <= 12; ++sf) {
    const double analytic = rx::bec_cr4_3col_error_probability(sf);

    const rx::Bec bec(sf, 4);
    int fails = 0;
    for (int t = 0; t < trials; ++t) {
      std::vector<std::uint8_t> truth(sf);
      for (auto& r : truth) r = lora::codewords(4)[rng.uniform_index(16)];
      std::set<unsigned> cols;
      while (cols.size() < 3) {
        cols.insert(static_cast<unsigned>(rng.uniform_index(8)));
      }
      std::vector<std::uint8_t> received = truth;
      for (unsigned c : cols) {
        bool any = false;
        while (!any) {
          for (std::size_t r = 0; r < received.size(); ++r) {
            received[r] = static_cast<std::uint8_t>(received[r] & ~(1u << c));
            const unsigned orig = (truth[r] >> c) & 1u;
            const unsigned bit = rng.uniform() < 0.5 ? orig ^ 1u : orig;
            received[r] |= static_cast<std::uint8_t>(bit << c);
            if (bit != orig) any = true;
          }
        }
      }
      bool ok = false;
      for (const auto& cand : bec.decode_block(received)) {
        if (cand == truth) {
          ok = true;
          break;
        }
      }
      if (!ok) ++fails;
    }
    std::printf("%-4u %-12.5f %-12.5f\n", sf, analytic,
                static_cast<double>(fails) / trials);
  }
  std::printf("\n(paper: <0.04 at SF 7, decreasing with SF; analysis and "
              "simulation reasonably close)\n");
  return 0;
}
