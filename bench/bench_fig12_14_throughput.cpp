// Figs. 12-14: throughput (decoded packets) vs offered load for the three
// deployments, SF 8 and SF 10, TnB vs CIC vs AlignTrack* vs LoRaPHY.
//
// Default mode runs CR 4 with a reduced load sweep and short traces; set
// TNB_BENCH_FULL=1 for all CR values, the full 5..25 pkt/s sweep and longer
// traces. Absolute counts differ from the paper (30 s USRP traces vs
// synthetic traces here), but the ordering and the growth of TnB's gain
// with SF are the reproduced shapes.
//
// Every (deployment, SF, CR, load, run) cell is independent: cells fan out
// across `--jobs N` (or TNB_JOBS) workers, results land in pre-sized slots,
// and the printed numbers are identical for every jobs value.
//
// --streaming additionally times a gateway-style streaming decode of each
// cell's trace (chunked StreamingReceiver, see bench/README.md) and adds
// the aggregate samples/sec to the summary line.
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "stream/streaming_receiver.hpp"

using namespace tnb;

namespace {

struct Cell {
  std::size_t dep = 0;
  unsigned sf = 8;
  unsigned cr = 4;
  double load = 0.0;
  int run = 0;
};

struct CellResult {
  std::vector<double> decoded;  ///< per scheme
  std::size_t offered = 0;
  std::size_t stream_samples = 0;  ///< --streaming: samples pushed
  double stream_s = 0.0;           ///< --streaming: decode wall time
};

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("Figs. 12-14: throughput vs offered load",
                      "paper Figs. 12, 13, 14");
  const int jobs = bench::parse_jobs(argc, argv);
  bool streaming = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--streaming") == 0) streaming = true;
  }
  const std::vector<base::Scheme> schemes = {
      base::Scheme::kTnB,       base::Scheme::kCic,
      base::Scheme::kAlignTrack, base::Scheme::kLoRaPhy,
      base::Scheme::kCoRa,      base::Scheme::kCoRaTnB,
      base::Scheme::kLZnThrive};
  const std::vector<unsigned> crs =
      bench::full_mode() ? std::vector<unsigned>{1, 2, 3, 4}
                         : std::vector<unsigned>{4};
  const std::vector<sim::Deployment> deps = {sim::indoor_deployment(),
                                             sim::outdoor1_deployment(),
                                             sim::outdoor2_deployment()};
  // The paper averages 3 runs per point; full mode does the same.
  const int runs = bench::full_mode() ? 3 : 1;

  std::vector<Cell> cells;
  for (std::size_t d = 0; d < deps.size(); ++d) {
    for (unsigned sf : {8u, 10u}) {
      for (unsigned cr : crs) {
        for (double load : bench::load_sweep()) {
          for (int run = 0; run < runs; ++run) {
            cells.push_back({d, sf, cr, load, run});
          }
        }
      }
    }
  }

  std::vector<CellResult> results(cells.size());
  bench::ObsScope obs;  // receivers below record stage timings into it
  const tnb::obs::HistogramRef cell_seconds = obs.cell_seconds();
  const bench::WallTimer total;
  common::parallel_for(cells.size(), jobs, [&](std::size_t i) {
    const Cell& c = cells[i];
    const bench::WallTimer timer;
    const lora::Params p{
        .sf = c.sf, .cr = c.cr, .bandwidth_hz = 125e3, .osf = 8};
    const sim::Trace trace = bench::make_deployment_trace(
        p, deps[c.dep], c.load,
        1000 + c.sf * 10 + c.cr + 7777u * static_cast<unsigned>(c.run));
    const auto detections = bench::detect_once(p, trace);
    CellResult& r = results[i];
    r.offered = trace.packets.size();
    r.decoded.resize(schemes.size(), 0.0);
    for (std::size_t si = 0; si < schemes.size(); ++si) {
      r.decoded[si] = static_cast<double>(
          bench::run_scheme(schemes[si], p, trace, false, &detections)
              .eval.decoded_unique);
    }
    if (streaming) {
      // Gateway-rate measurement: same trace through the chunked
      // StreamingReceiver (16-symbol chunks, tnb_streamd's default).
      const bench::WallTimer stream_timer;
      stream::StreamingReceiver srx(p, {}, {.keep_packets = false});
      stream::BufferSource source(trace.iq);
      r.stream_samples = srx.consume(source, 16 * p.sps());
      r.stream_s = stream_timer.seconds();
    }
    cell_seconds.observe(timer.seconds());
  });
  const double wall = total.seconds();

  double tnb_total = 0.0, cic_total = 0.0;
  double tnb_total_sf10 = 0.0, cic_total_sf10 = 0.0;
  std::size_t next = 0;
  for (std::size_t d = 0; d < deps.size(); ++d) {
    for (unsigned sf : {8u, 10u}) {
      for (unsigned cr : crs) {
        std::printf("\n%s, SF %u, CR %u (decoded packets per %.0f s trace):\n",
                    deps[d].name.c_str(), sf, cr, bench::trace_duration());
        std::printf("%-8s", "load");
        for (base::Scheme s : schemes) {
          std::printf("%14s", base::scheme_name(s).c_str());
        }
        std::printf("%10s\n", "offered");
        for (double load : bench::load_sweep()) {
          std::vector<double> decoded(schemes.size(), 0.0);
          std::size_t offered = 0;
          for (int run = 0; run < runs; ++run) {
            const CellResult& r = results[next++];
            offered += r.offered;
            for (std::size_t si = 0; si < schemes.size(); ++si) {
              decoded[si] += r.decoded[si];
            }
          }
          std::printf("%-8.0f", load);
          for (std::size_t si = 0; si < schemes.size(); ++si) {
            decoded[si] /= runs;
            std::printf("%14.1f", decoded[si]);
            if (load == bench::load_sweep().back()) {
              if (schemes[si] == base::Scheme::kTnB) {
                tnb_total += decoded[si];
                if (sf == 10) tnb_total_sf10 += decoded[si];
              }
              if (schemes[si] == base::Scheme::kCic) {
                cic_total += decoded[si];
                if (sf == 10) cic_total_sf10 += decoded[si];
              }
            }
          }
          std::printf("%10zu\n", offered / static_cast<std::size_t>(runs));
        }
      }
    }
  }
  std::printf("\nAggregate TnB/CIC throughput ratio at the highest load: "
              "%.2fx overall, %.2fx for SF 10\n",
              cic_total > 0 ? tnb_total / cic_total : 0.0,
              cic_total_sf10 > 0 ? tnb_total_sf10 / cic_total_sf10 : 0.0);
  std::printf("(paper: median gains 1.36x at SF 8 and 2.46x at SF 10)\n");
  double stream_sps = 0.0;
  if (streaming) {
    std::size_t stream_samples = 0;
    double stream_s = 0.0;
    for (const CellResult& r : results) {
      stream_samples += r.stream_samples;
      stream_s += r.stream_s;
    }
    if (stream_s > 0.0) {
      stream_sps = static_cast<double>(stream_samples) / stream_s;
    }
  }
  bench::print_obs_summary(obs.registry().snapshot(), cells.size(), jobs, wall,
                           stream_sps);
  return 0;
}
