// Figs. 12-14: throughput (decoded packets) vs offered load for the three
// deployments, SF 8 and SF 10, TnB vs CIC vs AlignTrack* vs LoRaPHY.
//
// Default mode runs CR 4 with a reduced load sweep and short traces; set
// TNB_BENCH_FULL=1 for all CR values, the full 5..25 pkt/s sweep and longer
// traces. Absolute counts differ from the paper (30 s USRP traces vs
// synthetic traces here), but the ordering and the growth of TnB's gain
// with SF are the reproduced shapes.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace tnb;

int main() {
  bench::print_header("Figs. 12-14: throughput vs offered load",
                      "paper Figs. 12, 13, 14");
  const std::vector<base::Scheme> schemes = {
      base::Scheme::kTnB, base::Scheme::kCic, base::Scheme::kAlignTrack,
      base::Scheme::kLoRaPhy};
  const std::vector<unsigned> crs =
      bench::full_mode() ? std::vector<unsigned>{1, 2, 3, 4}
                         : std::vector<unsigned>{4};

  double tnb_total = 0.0, cic_total = 0.0;
  double tnb_total_sf10 = 0.0, cic_total_sf10 = 0.0;

  for (const sim::Deployment& dep :
       {sim::indoor_deployment(), sim::outdoor1_deployment(),
        sim::outdoor2_deployment()}) {
    for (unsigned sf : {8u, 10u}) {
      for (unsigned cr : crs) {
        lora::Params p{.sf = sf, .cr = cr, .bandwidth_hz = 125e3, .osf = 8};
        std::printf("\n%s, SF %u, CR %u (decoded packets per %.0f s trace):\n",
                    dep.name.c_str(), sf, cr, bench::trace_duration());
        std::printf("%-8s", "load");
        for (base::Scheme s : schemes) {
          std::printf("%14s", base::scheme_name(s).c_str());
        }
        std::printf("%10s\n", "offered");
        // The paper averages 3 runs per point; full mode does the same.
        const int runs = bench::full_mode() ? 3 : 1;
        for (double load : bench::load_sweep()) {
          std::vector<double> decoded(schemes.size(), 0.0);
          std::size_t offered = 0;
          for (int run = 0; run < runs; ++run) {
            const sim::Trace trace = bench::make_deployment_trace(
                p, dep, load, 1000 + sf * 10 + cr + 7777u * static_cast<unsigned>(run));
            const auto detections = bench::detect_once(p, trace);
            offered += trace.packets.size();
            for (std::size_t si = 0; si < schemes.size(); ++si) {
              const auto r =
                  bench::run_scheme(schemes[si], p, trace, false, &detections);
              decoded[si] += static_cast<double>(r.eval.decoded_unique);
            }
          }
          std::printf("%-8.0f", load);
          for (std::size_t si = 0; si < schemes.size(); ++si) {
            decoded[si] /= runs;
            std::printf("%14.1f", decoded[si]);
            if (load == bench::load_sweep().back()) {
              if (schemes[si] == base::Scheme::kTnB) {
                tnb_total += decoded[si];
                if (sf == 10) tnb_total_sf10 += decoded[si];
              }
              if (schemes[si] == base::Scheme::kCic) {
                cic_total += decoded[si];
                if (sf == 10) cic_total_sf10 += decoded[si];
              }
            }
          }
          std::printf("%10zu\n", offered / static_cast<std::size_t>(runs));
        }
      }
    }
  }
  std::printf("\nAggregate TnB/CIC throughput ratio at the highest load: "
              "%.2fx overall, %.2fx for SF 10\n",
              cic_total > 0 ? tnb_total / cic_total : 0.0,
              cic_total_sf10 > 0 ? tnb_total_sf10 / cic_total_sf10 : 0.0);
  std::printf("(paper: median gains 1.36x at SF 8 and 2.46x at SF 10)\n");
  return 0;
}
