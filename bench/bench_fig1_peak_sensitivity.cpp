// Fig. 1(b)(c): sensitivity of the demodulated peak height to symbol-
// boundary misalignment and to residual CFO.
#include <cstdio>

#include "bench_util.hpp"
#include "lora/chirp.hpp"
#include "lora/demodulator.hpp"

using namespace tnb;

int main() {
  bench::print_header("Fig. 1: peak height vs timing error and CFO",
                      "paper Fig. 1(b)(c)");
  lora::Params p{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 8};
  const lora::Demodulator demod(p);
  const std::uint32_t shift = 64;

  // A symbol followed by a *different* symbol, so a late window loses the
  // first symbol's energy to the neighbour (paper Fig. 1(b)).
  const auto sym = lora::make_upchirp(p, shift);
  const auto next = lora::make_upchirp(p, 200);
  std::vector<cfloat> twosym(sym.begin(), sym.end());
  twosym.insert(twosym.end(), next.begin(), next.end());

  std::printf("timing_error_frac  rel_peak_height (at the symbol's bin)\n");
  double h0 = 0.0;
  for (int i = 0; i <= 10; ++i) {
    const double frac = i / 10.0 * 0.5;  // up to half a symbol
    const std::size_t off = static_cast<std::size_t>(frac * p.sps());
    const SignalVector sv = demod.signal_vector(
        std::span<const cfloat>(twosym).subspan(off, p.sps()), 0.0);
    // Track the first symbol's (shifting) peak rather than the global max.
    const std::size_t want =
        (shift + static_cast<std::size_t>(frac * static_cast<double>(p.n_bins()))) %
        p.n_bins();
    float peak = 0.0f;
    for (int d = -1; d <= 1; ++d) {
      const std::size_t b = (want + p.n_bins() + static_cast<std::size_t>(d + static_cast<int>(p.n_bins()))) % p.n_bins();
      peak = std::max(peak, sv[b]);
    }
    if (i == 0) h0 = peak;
    std::printf("%8.2f %18.3f\n", frac, peak / h0);
  }

  std::printf("\ncfo_cycles  rel_peak_height\n");
  for (int i = 0; i <= 10; ++i) {
    const double cfo = i / 10.0;  // 0..1 cycles per symbol
    const SignalVector sv = demod.signal_vector(sym, cfo);
    // Peak splits between adjacent bins as the CFO grows.
    const float peak = *std::max_element(sv.begin(), sv.end());
    std::printf("%8.2f %18.3f\n", cfo, peak / h0);
  }
  std::printf("\n(paper: ~0.5 cycles of CFO or a quarter-symbol timing error "
              "visibly lower the peak)\n");
  return 0;
}
