// Fig. 16: CDF of the number of BEC-rescued codewords per decoded packet —
// codewords decoded correctly by BEC but mis-decoded by the default
// per-row decoder.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"

using namespace tnb;

int main() {
  bench::print_header("Fig. 16: BEC-rescued codewords per decoded packet",
                      "paper Fig. 16");
  const double load = bench::load_sweep().back();
  for (unsigned sf : {8u, 10u}) {
    std::vector<std::size_t> rescued;
    for (const sim::Deployment& dep :
         {sim::indoor_deployment(), sim::outdoor1_deployment(),
          sim::outdoor2_deployment()}) {
      lora::Params p{.sf = sf, .cr = 3, .bandwidth_hz = 125e3, .osf = 8};
      const sim::Trace trace =
          bench::make_deployment_trace(p, dep, load, 1600 + sf);
      const auto r = bench::run_scheme(base::Scheme::kTnB, p, trace);
      rescued.insert(rescued.end(), r.stats.rescued_per_packet.begin(),
                     r.stats.rescued_per_packet.end());
    }
    std::sort(rescued.begin(), rescued.end());
    std::size_t with_rescue = 0;
    for (std::size_t v : rescued) with_rescue += (v > 0);
    std::printf("\nSF %u: %zu decoded packets, %zu (%.0f%%) had at least one "
                "rescued codeword\n",
                sf, rescued.size(), with_rescue,
                rescued.empty() ? 0.0
                                : 100.0 * static_cast<double>(with_rescue) /
                                      static_cast<double>(rescued.size()));
    std::printf("  CDF of rescued codewords:");
    for (double q : {0.5, 0.75, 0.9, 1.0}) {
      if (rescued.empty()) break;
      const std::size_t idx = std::min(
          rescued.size() - 1,
          static_cast<std::size_t>(q * (static_cast<double>(rescued.size()) - 1)));
      std::printf("  p%-3.0f=%zu", q * 100, rescued[idx]);
    }
    std::printf("\n");
  }
  std::printf("\n(paper: a visible fraction of decoded packets carries one or "
              "more BEC-rescued codewords)\n");
  return 0;
}
