// Fig. 11: medium usage (packets simultaneously on the air) over time at
// the highest offered load, for SF 8 and SF 10.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"

using namespace tnb;

int main() {
  bench::print_header("Fig. 11: medium usage at the highest load",
                      "paper Fig. 11");
  for (unsigned sf : {8u, 10u}) {
    lora::Params p{.sf = sf, .cr = 1, .bandwidth_hz = 125e3, .osf = 8};
    const sim::Trace trace = bench::make_deployment_trace(
        p, sim::outdoor1_deployment(), 25.0, 11 + sf);
    const auto usage = sim::medium_usage_timeline(trace, 0.1);
    int mx = 0;
    double mean = 0.0;
    for (int u : usage) {
      mx = std::max(mx, u);
      mean += u;
    }
    mean /= static_cast<double>(usage.size());
    std::printf("\nSF %u (CR 1, 25 pkt/s offered, %.0f s):\n  usage over "
                "time (0.1 s bins): ",
                sf, bench::trace_duration());
    for (std::size_t i = 0; i < usage.size(); ++i) {
      std::printf("%d ", usage[i]);
    }
    std::printf("\n  mean %.1f, max %d packets on the air\n", mean, mx);
  }
  std::printf("\n(paper: medium is busy for both SFs and busier for SF 10, "
              "whose packets last ~4x longer)\n");
  return 0;
}
