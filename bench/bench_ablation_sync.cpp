// Ablation of the fractional-sync search (paper Section 7, step 4): the
// 3-phase search evaluates ~36 points; a naive search would evaluate the
// full (dt, df) grid. Compares accuracy and cost of both on the same
// packets.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "channel/awgn.hpp"
#include "core/frac_sync.hpp"
#include "lora/frame.hpp"
#include "lora/modulator.hpp"

using namespace tnb;

int main() {
  bench::print_header("Fractional-sync search: 3-phase vs naive grid",
                      "paper Section 7 complexity discussion");
  lora::Params p{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 8};
  const rx::FracSync fs(p);
  const lora::Modulator mod(p);
  Rng rng(9);

  const int trials = bench::full_mode() ? 20 : 6;
  double err3 = 0.0, err_naive = 0.0;
  double t3 = 0.0, tn = 0.0;
  int evals_naive = 0;

  for (int t = 0; t < trials; ++t) {
    const double true_dt = rng.uniform(-0.5, 0.5);
    const double true_df = rng.uniform(-0.5, 0.5);
    std::vector<std::uint8_t> app(14, 0x5A);
    const auto symbols = lora::make_packet_symbols(p, app);
    lora::WaveformOptions wopt;
    wopt.frac_delay = true_dt - std::floor(true_dt);
    wopt.cfo_hz = p.cfo_cycles_to_hz(true_df);
    const IqBuffer pkt = mod.synthesize(symbols, wopt);
    IqBuffer trace(pkt.size() + 8 * p.sps(), cfloat{0.0f, 0.0f});
    const double t0 =
        2.0 * static_cast<double>(p.sps()) + std::floor(true_dt);
    for (std::size_t i = 0; i < pkt.size(); ++i) {
      trace[static_cast<std::size_t>(t0) + i] += pkt[i];
    }
    chan::add_awgn(trace, 1.0, rng);
    const double base = 2.0 * static_cast<double>(p.sps());

    const auto c0 = std::chrono::steady_clock::now();
    const rx::FracSyncResult r3 = fs.refine(trace, base, 0.0);
    const auto c1 = std::chrono::steady_clock::now();

    // Naive: full grid over df in [-1, 1] step 1/16 and dt in [-1, 1]
    // step 1/OSF, ungated Q with a gated tiebreak.
    double best_q = -1.0, ndt = 0.0, ndf = 0.0;
    evals_naive = 0;
    for (int i = -16; i <= 16; ++i) {
      for (int j = -static_cast<int>(p.osf); j <= static_cast<int>(p.osf); ++j) {
        const double df = i / 16.0;
        const double dt = static_cast<double>(j) / p.osf;
        const double q = fs.q(trace, base, 0.0, dt, df, /*gate=*/true);
        ++evals_naive;
        if (q > best_q) {
          best_q = q;
          ndt = dt;
          ndf = df;
        }
      }
    }
    const auto c2 = std::chrono::steady_clock::now();

    err3 += std::abs(r3.dt - true_dt) + std::abs(r3.df - true_df);
    err_naive += std::abs(ndt - true_dt) + std::abs(ndf - true_df);
    t3 += std::chrono::duration<double>(c1 - c0).count();
    tn += std::chrono::duration<double>(c2 - c1).count();
  }

  std::printf("%-14s %14s %14s %12s\n", "search", "mean |err|", "time/packet",
              "evaluations");
  std::printf("%-14s %14.3f %12.1f ms %12d\n", "3-phase",
              err3 / (2 * trials), 1e3 * t3 / trials, 17 + 10 + 9);
  std::printf("%-14s %14.3f %12.1f ms %12d\n", "naive grid",
              err_naive / (2 * trials), 1e3 * tn / trials, evals_naive);
  std::printf("\n(the 3-phase search matches the naive grid's accuracy at a "
              "fraction of the evaluations — the paper's step-4 design "
              "point)\n");
  return 0;
}
