// Table 1: decoding capability of the default decoder vs BEC, per CR.
//
// Monte-Carlo over random blocks with 1/2/3 corrupted symbols (columns):
// the default decoder must show its per-row limits, and BEC must hit the
// paper's claims — 1-symbol errors at every CR, 2-symbol at CR 3 ("almost
// all") and CR 4 (all), and >96% of 3-symbol errors at CR 4.
//
// The Monte-Carlo itself lives in core/bec_montecarlo so the golden-value
// regression test (test_golden_bec) pins exactly these numbers.
#include <cstdio>

#include "bench_util.hpp"
#include "core/bec_montecarlo.hpp"

using namespace tnb;

int main() {
  bench::print_header("Table 1: Decoding Capability Comparison",
                      "paper Table 1");
  const unsigned sf = 8;
  const int trials = bench::full_mode() ? 20000 : 3000;
  Rng rng(1);

  std::printf("%-4s %-10s %-16s %-16s %s\n", "CR", "#corrupt", "default ok",
              "BEC ok", "paper claim for BEC");
  const char* claims[5][4] = {
      {},
      {"corrects 1-symbol", "-", "-", nullptr},
      {"corrects 1-symbol", "-", "-", nullptr},
      {"corrects 1-symbol", "almost all 2-symbol", "-", nullptr},
      {"corrects 1-symbol", "all 2-symbol", ">96% of 3-symbol", nullptr},
  };
  for (unsigned cr = 1; cr <= 4; ++cr) {
    const unsigned max_err = cr <= 2 ? 1 : (cr == 3 ? 2 : 3);
    for (unsigned e = 1; e <= max_err; ++e) {
      const rx::BecMcResult r = rx::bec_capability_mc(sf, cr, e, trials, rng);
      std::printf("%-4u %-10u %-16.4f %-16.4f %s\n", cr, e, r.default_rate(),
                  r.bec_rate(), claims[cr][e - 1]);
    }
  }
  std::printf("\n(SF %u, %d trials per row; 'default ok' = every row decoded "
              "by nearest-codeword alone)\n",
              sf, trials);
  return 0;
}
