// Table 1: decoding capability of the default decoder vs BEC, per CR.
//
// Monte-Carlo over random blocks with 1/2/3 corrupted symbols (columns):
// the default decoder must show its per-row limits, and BEC must hit the
// paper's claims — 1-symbol errors at every CR, 2-symbol at CR 3 ("almost
// all") and CR 4 (all), and >96% of 3-symbol errors at CR 4.
#include <cstdio>
#include <set>

#include "bench_util.hpp"
#include "core/bec.hpp"
#include "lora/hamming.hpp"

using namespace tnb;

namespace {

struct Rates {
  double default_rate = 0.0;
  double bec_rate = 0.0;
};

Rates measure(unsigned sf, unsigned cr, unsigned n_err_cols, int trials,
              Rng& rng) {
  const rx::Bec bec(sf, cr);
  int ok_default = 0, ok_bec = 0;
  for (int t = 0; t < trials; ++t) {
    std::vector<std::uint8_t> truth(sf);
    for (auto& r : truth) r = lora::codewords(cr)[rng.uniform_index(16)];

    std::set<unsigned> cols;
    while (cols.size() < n_err_cols) {
      cols.insert(static_cast<unsigned>(rng.uniform_index(4 + cr)));
    }
    std::vector<std::uint8_t> received = truth;
    for (unsigned c : cols) {
      bool any = false;
      while (!any) {
        for (std::size_t r = 0; r < received.size(); ++r) {
          received[r] = static_cast<std::uint8_t>(received[r] & ~(1u << c));
          const unsigned orig = (truth[r] >> c) & 1u;
          const unsigned bit = rng.uniform() < 0.5 ? orig ^ 1u : orig;
          received[r] |= static_cast<std::uint8_t>(bit << c);
          if (bit != orig) any = true;
        }
      }
    }

    bool def_ok = true;
    for (unsigned r = 0; r < sf; ++r) {
      if (lora::default_decode(received[r], cr).codeword != truth[r]) {
        def_ok = false;
        break;
      }
    }
    if (def_ok) ++ok_default;

    for (const auto& cand : bec.decode_block(received)) {
      if (cand == truth) {
        ++ok_bec;
        break;
      }
    }
  }
  return {static_cast<double>(ok_default) / trials,
          static_cast<double>(ok_bec) / trials};
}

}  // namespace

int main() {
  bench::print_header("Table 1: Decoding Capability Comparison",
                      "paper Table 1");
  const unsigned sf = 8;
  const int trials = bench::full_mode() ? 20000 : 3000;
  Rng rng(1);

  std::printf("%-4s %-10s %-16s %-16s %s\n", "CR", "#corrupt", "default ok",
              "BEC ok", "paper claim for BEC");
  const char* claims[5][4] = {
      {},
      {"corrects 1-symbol", "-", "-", nullptr},
      {"corrects 1-symbol", "-", "-", nullptr},
      {"corrects 1-symbol", "almost all 2-symbol", "-", nullptr},
      {"corrects 1-symbol", "all 2-symbol", ">96% of 3-symbol", nullptr},
  };
  for (unsigned cr = 1; cr <= 4; ++cr) {
    const unsigned max_err = cr <= 2 ? 1 : (cr == 3 ? 2 : 3);
    for (unsigned e = 1; e <= max_err; ++e) {
      const Rates r = measure(sf, cr, e, trials, rng);
      std::printf("%-4u %-10u %-16.4f %-16.4f %s\n", cr, e, r.default_rate,
                  r.bec_rate, claims[cr][e - 1]);
    }
  }
  std::printf("\n(SF %u, %d trials per row; 'default ok' = every row decoded "
              "by nearest-codeword alone)\n",
              sf, trials);
  return 0;
}
