// Fig. 17: packet receiving ratio of TnB vs CIC across SNR ranges.
#include <cstdio>
#include <map>

#include "bench_util.hpp"

using namespace tnb;

int main() {
  bench::print_header("Fig. 17: PRR at various SNR ranges, TnB vs CIC",
                      "paper Fig. 17");
  const double load = bench::load_sweep().back();
  const double bucket = 10.0;

  for (unsigned sf : {8u, 10u}) {
    // (bucket edge) -> (sum, count) per scheme.
    std::map<double, std::pair<double, int>> tnb_buckets, cic_buckets;
    for (const sim::Deployment& dep :
         {sim::indoor_deployment(), sim::outdoor1_deployment(),
          sim::outdoor2_deployment()}) {
      lora::Params p{.sf = sf, .cr = 4, .bandwidth_hz = 125e3, .osf = 8};
      const sim::Trace trace =
          bench::make_deployment_trace(p, dep, load, 1700 + sf);
      rx::Receiver tnb_rx = base::make_receiver(base::Scheme::kTnB, p);
      rx::Receiver cic_rx = base::make_receiver(base::Scheme::kCic, p);
      Rng r1(1), r2(1);
      const auto tnb_pkts = tnb_rx.decode(trace.iq, r1);
      const auto cic_pkts = cic_rx.decode(trace.iq, r2);
      for (const auto& [edge, prr] : sim::prr_by_snr(trace, tnb_pkts, bucket)) {
        tnb_buckets[edge].first += prr;
        tnb_buckets[edge].second += 1;
      }
      for (const auto& [edge, prr] : sim::prr_by_snr(trace, cic_pkts, bucket)) {
        cic_buckets[edge].first += prr;
        cic_buckets[edge].second += 1;
      }
    }
    std::printf("\nSF %u:\n%-16s %-10s %-10s\n", sf, "SNR range (dB)", "TnB",
                "CIC");
    for (const auto& [edge, sum_n] : tnb_buckets) {
      const auto cic_it = cic_buckets.find(edge);
      const double cic_prr =
          cic_it == cic_buckets.end()
              ? 0.0
              : cic_it->second.first / cic_it->second.second;
      std::printf("[%4.0f, %4.0f)     %-10.2f %-10.2f\n", edge, edge + bucket,
                  sum_n.first / sum_n.second, cic_prr);
    }
  }
  std::printf("\n(paper: PRR rises with SNR; TnB above CIC in nearly every "
              "range)\n");
  return 0;
}
