// Fig. 17: packet receiving ratio across SNR ranges — extended from the
// paper's TnB-vs-CIC pair to every scheme in base::all_schemes(), so the
// related-work peers (CoRa, LZn-Thrive) and the hybrids line up in the
// same SNR buckets. Cells fan out over --jobs (results in pre-sized
// slots: identical output for every jobs value).
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.hpp"

using namespace tnb;

int main(int argc, char** argv) {
  bench::print_header("Fig. 17: PRR at various SNR ranges, all schemes",
                      "paper Fig. 17");
  const int jobs = bench::parse_jobs(argc, argv);
  const double load = bench::load_sweep().back();
  const double bucket = 10.0;
  const std::vector<base::Scheme> schemes = base::all_schemes();

  for (unsigned sf : {8u, 10u}) {
    // Per scheme: (bucket edge) -> (sum, count).
    std::vector<std::map<double, std::pair<double, int>>> buckets(
        schemes.size());
    for (const sim::Deployment& dep :
         {sim::indoor_deployment(), sim::outdoor1_deployment(),
          sim::outdoor2_deployment()}) {
      lora::Params p{.sf = sf, .cr = 4, .bandwidth_hz = 125e3, .osf = 8};
      const sim::Trace trace =
          bench::make_deployment_trace(p, dep, load, 1700 + sf);
      std::vector<std::vector<std::pair<double, double>>> per_scheme(
          schemes.size());
      common::parallel_for(schemes.size(), jobs, [&](std::size_t i) {
        rx::Receiver receiver = base::make_receiver(schemes[i], p);
        Rng rng(1);
        const auto pkts = receiver.decode(trace.iq, rng);
        per_scheme[i] = sim::prr_by_snr(trace, pkts, bucket);
      });
      for (std::size_t i = 0; i < schemes.size(); ++i) {
        for (const auto& [edge, prr] : per_scheme[i]) {
          buckets[i][edge].first += prr;
          buckets[i][edge].second += 1;
        }
      }
    }

    // Every bucket edge any scheme produced, in order.
    std::map<double, int> edges;
    for (const auto& b : buckets) {
      for (const auto& [edge, sum_n] : b) edges[edge] = 1;
    }
    std::printf("\nSF %u:\n%-16s", sf, "SNR range (dB)");
    for (const base::Scheme s : schemes) {
      std::printf(" %-12s", base::scheme_name(s).c_str());
    }
    std::printf("\n");
    for (const auto& [edge, unused] : edges) {
      std::printf("[%4.0f, %4.0f)    ", edge, edge + bucket);
      for (std::size_t i = 0; i < schemes.size(); ++i) {
        const auto it = buckets[i].find(edge);
        const double prr =
            it == buckets[i].end() || it->second.second == 0
                ? 0.0
                : it->second.first / it->second.second;
        std::printf(" %-12.2f", prr);
      }
      std::printf("\n");
    }
  }
  std::printf("\n(paper: PRR rises with SNR; TnB above CIC in nearly every "
              "range)\n");
  return 0;
}
