// Ablations of TnB's design choices beyond the paper's Fig. 15:
//  * omega, the history-cost weight (paper fixes 0.1);
//  * the W CRC budget at CR 1 (paper 6.9: W=25 loses <5% vs W=125);
//  * the second decoding pass;
//  * the fractional synchronization stage.
#include <cstdio>
#include <set>

#include "bench_util.hpp"
#include "core/bec.hpp"
#include "lora/frame.hpp"

using namespace tnb;

namespace {

std::size_t decode_count(const lora::Params& p, const sim::Trace& trace,
                         const rx::ReceiverOptions& opt) {
  rx::Receiver receiver(p, opt);
  Rng rng(1);
  const auto decoded = receiver.decode(trace.iq, rng);
  return sim::evaluate(trace, decoded).decoded_unique;
}

}  // namespace

int main() {
  bench::print_header("Design ablations: omega, W budget, second pass, "
                      "fractional sync",
                      "paper 5.3.3, 6.9, Section 4");
  lora::Params p{.sf = 10, .cr = 4, .bandwidth_hz = 125e3, .osf = 8};
  const sim::Trace trace = bench::make_deployment_trace(
      p, sim::outdoor1_deployment(), bench::load_sweep().back(), 2100);
  std::printf("(SF 10, Outdoor 1, %zu tx packets)\n\n", trace.packets.size());

  std::printf("omega (history-cost weight):\n");
  for (double omega : {0.0, 0.05, 0.1, 0.3, 1.0}) {
    rx::ReceiverOptions opt;
    opt.thrive.omega = omega;
    std::printf("  omega=%-5.2f decoded=%zu%s\n", omega,
                decode_count(p, trace, opt),
                omega == 0.1 ? "   <- paper value" : "");
  }

  std::printf("\nsecond pass / fractional sync:\n");
  {
    rx::ReceiverOptions opt;
    std::printf("  full TnB             decoded=%zu\n", decode_count(p, trace, opt));
    opt.two_pass = false;
    std::printf("  without second pass  decoded=%zu\n", decode_count(p, trace, opt));
    opt.two_pass = true;
    opt.use_frac_sync = false;
    std::printf("  without frac sync    decoded=%zu\n", decode_count(p, trace, opt));
  }

  // W budget at CR 1: corrupt two blocks of many packets and count how the
  // CRC budget changes the packet decode rate (paper 6.9).
  std::printf("\nW budget at CR 1 (packet decode rate, 2 corrupted blocks):\n");
  lora::Params p1{.sf = 8, .cr = 1, .bandwidth_hz = 125e3, .osf = 8};
  const int trials = bench::full_mode() ? 2000 : 500;
  for (std::size_t w : {5ul, 25ul, 125ul}) {
    Rng rng(3);
    int ok = 0;
    for (int t = 0; t < trials; ++t) {
      std::vector<std::uint8_t> app(14);
      for (auto& b : app) b = static_cast<std::uint8_t>(rng.uniform_index(256));
      const auto payload = lora::assemble_payload(app);
      auto symbols = lora::encode_payload_symbols(p1, payload);
      const std::size_t cols = p1.codeword_len();
      const std::size_t n_blocks = symbols.size() / cols;
      std::set<std::size_t> blocks;
      while (blocks.size() < 2) blocks.insert(rng.uniform_index(n_blocks));
      for (std::size_t blk : blocks) {
        const std::size_t victim = blk * cols + rng.uniform_index(cols);
        symbols[victim] ^= static_cast<std::uint32_t>(
            1 + rng.uniform_index((1u << p1.sf) - 1));
      }
      const auto r =
          rx::decode_payload_bec(p1, symbols, payload.size(), rng, nullptr, w);
      if (r.ok) ++ok;
    }
    std::printf("  W=%-4zu rate=%.3f%s\n", w,
                static_cast<double>(ok) / trials,
                w == 125 ? "   <- paper value (W=25 claimed within 5%)" : "");
  }
  return 0;
}
