// Shared helpers for the figure/table reproduction benches.
//
// Every bench prints the same rows/series the paper reports. Defaults are
// sized for a single-core laptop run of the whole suite; set
// TNB_BENCH_FULL=1 for paper-scale durations and sweeps.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/factories.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "obs/stage_timer.hpp"
#include "sim/deployment.hpp"
#include "sim/metrics.hpp"
#include "sim/trace_builder.hpp"

namespace tnb::bench {

inline bool full_mode() {
  const char* v = std::getenv("TNB_BENCH_FULL");
  return v != nullptr && v[0] != '0';
}

/// Worker threads for a bench: `--jobs N` on the command line, else the
/// TNB_JOBS environment variable, else 1. Benches fan independent
/// (deployment, SF, CR, load, run) cells across common::parallel_for with
/// results in pre-sized slots, so the printed numbers are identical for
/// every jobs value (see bench/README.md "Parallel runs").
inline int parse_jobs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0) {
      const int n = std::atoi(argv[i + 1]);
      return n > 0 ? n : 1;
    }
  }
  return common::default_jobs();
}

/// Monotonic wall-clock stopwatch for the per-run / per-bench timings.
class WallTimer {
 public:
  WallTimer() : t0_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

/// One-line parallelism report, printed at the end of a parallel bench so
/// the perf trajectory is visible in archived outputs: `seq_s` is the sum
/// of per-cell wall clocks (the estimated --jobs 1 wall clock).
inline void print_parallel_summary(std::size_t runs, int jobs, double wall_s,
                                   double seq_s) {
  std::printf("runs=%zu jobs=%d wall=%.2fs speedup=%.2fx\n", runs, jobs,
              wall_s, wall_s > 0.0 ? seq_s / wall_s : 1.0);
}

/// RAII install of a bench-local tnb::obs registry as the process global,
/// so receivers constructed by worker cells record pipeline stage timings
/// into it. Construct before the parallel_for (handles resolve at receiver
/// construction).
class ObsScope {
 public:
  ObsScope() { obs::Registry::set_global(&registry_); }
  ~ObsScope() { obs::Registry::set_global(nullptr); }
  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;
  obs::Registry& registry() { return registry_; }

  /// Per-cell wall-clock histogram (seconds). Workers observe one value
  /// per cell; its sum is the estimated --jobs 1 wall clock.
  obs::HistogramRef cell_seconds() {
    static constexpr double kBounds[] = {0.01, 0.03, 0.1,  0.3,  1.0,
                                         3.0,  10.0, 30.0, 100.0};
    return registry_.histogram("tnb_bench_cell_seconds", kBounds,
                               "Wall-clock seconds per bench cell");
  }

 private:
  obs::Registry registry_;
};

/// Histogram-based run report, replacing the single `wall=…s` scalar of
/// print_parallel_summary (see bench/README.md "Histogram summaries"):
/// a `runs=… jobs=… speedup=…` line (speedup from the cell-seconds
/// histogram sum), then one `hist` line per histogram in the snapshot —
/// per-cell wall clocks and the per-stage pipeline timings.
inline void print_obs_summary(const obs::Snapshot& snap, std::size_t runs,
                              int jobs, double wall_s,
                              double stream_sps = 0.0) {
  const obs::Snapshot::Metric* cell = snap.find("tnb_bench_cell_seconds");
  const double seq_s = cell != nullptr ? cell->sum : 0.0;
  std::printf("runs=%zu jobs=%d speedup=%.2fx", runs, jobs,
              wall_s > 0.0 ? seq_s / wall_s : 1.0);
  if (stream_sps > 0.0) std::printf(" stream_sps=%.0f", stream_sps);
  std::printf("\n");
  for (const obs::Snapshot::Metric& m : snap.metrics) {
    if (m.kind != obs::Snapshot::Kind::kHistogram) continue;
    std::string label = m.name;
    for (const auto& [k, v] : m.labels) label += "{" + v + "}";
    std::printf("hist %-40s %s\n", label.c_str(),
                obs::histogram_summary(m).c_str());
  }
}

/// Trace duration in seconds (paper: 30 s runs).
inline double trace_duration() { return full_mode() ? 10.0 : 2.0; }

/// Offered loads in pkt/s (paper: 5..25 step 5).
inline std::vector<double> load_sweep() {
  if (full_mode()) return {5.0, 10.0, 15.0, 20.0, 25.0};
  return {5.0, 15.0, 25.0};
}

struct SchemeResult {
  std::string name;
  sim::EvalResult eval;
  rx::ReceiverStats stats;
};

/// Builds a deployment trace at an offered load.
inline sim::Trace make_deployment_trace(const lora::Params& params,
                                        const sim::Deployment& dep,
                                        double load_pps, std::uint64_t seed,
                                        const chan::Channel* channel = nullptr,
                                        unsigned n_antennas = 1) {
  Rng rng(seed);
  sim::TraceOptions opt;
  opt.duration_s = trace_duration();
  opt.load_pps = load_pps;
  opt.nodes = dep.draw_nodes(rng);
  opt.channel = channel;
  opt.n_antennas = n_antennas;
  return sim::build_trace(params, opt, rng);
}

/// Detection + fractional sync for one trace — run once and share across
/// schemes (they all use TnB's detector, as in the paper's methodology).
inline std::vector<rx::DetectedPacket> detect_once(const lora::Params& params,
                                                   const sim::Trace& trace,
                                                   bool use_all_antennas = false) {
  rx::Receiver receiver(params);
  return receiver.detect(use_all_antennas
                             ? trace.antenna_spans()
                             : std::vector<std::span<const cfloat>>{trace.iq});
}

/// Decodes one trace with one scheme and scores it. Pass `detections` to
/// reuse a shared detection result.
inline SchemeResult run_scheme(
    base::Scheme scheme, const lora::Params& params, const sim::Trace& trace,
    bool use_all_antennas = false,
    const std::vector<rx::DetectedPacket>* detections = nullptr) {
  rx::Receiver receiver = base::make_receiver(scheme, params);
  Rng rng(0xBEC + static_cast<std::uint64_t>(scheme));
  SchemeResult r;
  r.name = base::scheme_name(scheme);
  const std::vector<std::span<const cfloat>> spans =
      use_all_antennas ? trace.antenna_spans()
                       : std::vector<std::span<const cfloat>>{trace.iq};
  // Schemes with their own synchronization front end (LZn) must not take
  // shared Detector results — their detection path IS the thing measured.
  const bool own_sync = base::scheme_uses_custom_sync(scheme);
  const auto decoded =
      detections != nullptr && !own_sync
          ? receiver.decode_with_detections(spans, *detections, rng, &r.stats)
          : receiver.decode_multi(spans, rng, &r.stats);
  r.eval = sim::evaluate(trace, decoded);
  return r;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("(reproduces %s; TNB_BENCH_FULL=%d)\n", paper_ref,
              full_mode() ? 1 : 0);
  std::printf("==============================================================\n");
}

}  // namespace tnb::bench
