// Extension beyond the paper: sensitivity of TnB and CIC to the multipath
// profile — EPA (pedestrian), EVA (vehicular), ETU (urban, the paper's
// choice) at the same Doppler and load.
#include <cstdio>

#include "bench_util.hpp"
#include "channel/tdl.hpp"

using namespace tnb;

int main() {
  bench::print_header(
      "Channel-profile sensitivity (extension): EPA / EVA / ETU",
      "an extension of paper Fig. 19");
  const double load = 5.0;
  for (unsigned sf : {8u, 10u}) {
    const sim::Deployment dep = sim::etu_deployment(sf);
    lora::Params p{.sf = sf, .cr = 4, .bandwidth_hz = 125e3, .osf = 8};
    std::printf("\nSF %u (SNR in [%g, %g] dB):\n", sf, dep.snr_min_db,
                dep.snr_max_db);
    for (const chan::TdlProfile& profile :
         {chan::epa_profile(), chan::eva_profile(), chan::etu_profile()}) {
      const chan::TdlChannel ch(profile, 5.0);
      // Long, light-load traces: fading statistics dominate, so give them
      // time to average out.
      Rng rng(2200 + sf);
      sim::TraceOptions opt;
      opt.duration_s = 2.0 * bench::trace_duration();
      opt.load_pps = load;
      opt.nodes = dep.draw_nodes(rng);
      opt.channel = &ch;
      const sim::Trace trace = sim::build_trace(p, opt, rng);
      const auto detections = bench::detect_once(p, trace);
      const auto tnb = bench::run_scheme(base::Scheme::kTnB, p, trace, false,
                                         &detections);
      const auto cic = bench::run_scheme(base::Scheme::kCic, p, trace, false,
                                         &detections);
      std::printf("  %-4s TnB PRR %.2f  CIC PRR %.2f  (%zu tx)\n",
                  profile.name, tnb.eval.prr, cic.eval.prr,
                  trace.packets.size());
    }
  }
  std::printf("\n(expected shape: milder profiles (EPA) decode better; the "
              "TnB-over-CIC gap widens with dispersion and SF)\n");
  return 0;
}
