// Fig. 19: simulation in the LTE ETU channel (strong multipath, 5 Hz
// Doppler): PRR of CIC, CIC+, AlignTrack*, AlignTrack*+, Thrive, TnB and
// the 2-antenna TnB2ant.
#include <cstdio>

#include "bench_util.hpp"
#include "channel/etu.hpp"

using namespace tnb;

int main() {
  bench::print_header("Fig. 19: PRR in the ETU channel", "paper Fig. 19");
  const chan::EtuChannel etu(5.0);
  const std::vector<base::Scheme> schemes = {
      base::Scheme::kCic,        base::Scheme::kCicBec,
      base::Scheme::kAlignTrack, base::Scheme::kAlignTrackBec,
      base::Scheme::kCoRa,       base::Scheme::kCoRaBec,
      base::Scheme::kLZnThrive,  base::Scheme::kCoRaTnB,
      base::Scheme::kThrive,     base::Scheme::kTnB};
  const std::vector<unsigned> crs =
      bench::full_mode() ? std::vector<unsigned>{1, 2, 3, 4}
                         : std::vector<unsigned>{4};
  // Load chosen (as in the paper) so the strongest scheme lands near
  // PRR ~0.9: light concurrency, the channel itself is the challenge.
  const double load = 5.0;

  for (unsigned sf : {8u, 10u}) {
    const sim::Deployment dep = sim::etu_deployment(sf);
    for (unsigned cr : crs) {
      lora::Params p{.sf = sf, .cr = cr, .bandwidth_hz = 125e3, .osf = 8};
      // Longer trace than the other benches: the load is light, so packets
      // are cheap to decode, and the fading statistics need the extra time.
      auto make = [&](unsigned antennas) {
        Rng rng(1900 + sf * 10 + cr);
        sim::TraceOptions opt;
        opt.duration_s = 2.0 * bench::trace_duration();
        opt.load_pps = load;
        opt.nodes = dep.draw_nodes(rng);
        opt.channel = &etu;
        opt.n_antennas = antennas;
        return sim::build_trace(p, opt, rng);
      };
      const sim::Trace trace = make(1);
      const sim::Trace trace2 = make(2);
      const auto detections = bench::detect_once(p, trace);
      std::printf("\nSF %u, CR %u, ETU (SNR in [%g, %g] dB, %zu tx):\n", sf,
                  cr, dep.snr_min_db, dep.snr_max_db, trace.packets.size());
      for (base::Scheme s : schemes) {
        const auto r = bench::run_scheme(s, p, trace, false, &detections);
        std::printf("  %-14s PRR %.2f (%zu pkts)\n",
                    base::scheme_name(s).c_str(), r.eval.prr,
                    r.eval.decoded_unique);
      }
      const auto r2 = bench::run_scheme(base::Scheme::kTnB, p, trace2,
                                        /*use_all_antennas=*/true);
      std::printf("  %-14s PRR %.2f (%zu pkts)\n", "TnB2ant", r2.eval.prr,
                  r2.eval.decoded_unique);
    }
  }
  std::printf("\n(paper: TnB2ant close to/above 0.9; TnB and Thrive gain more "
              "over CIC here than on the static testbeds; BEC always helps "
              "when combined with CIC and AlignTrack*)\n");
  return 0;
}
