// Fig. 15: component ablation at the highest load — TnB (Thrive+BEC),
// Thrive (no BEC), Sibling (no history cost), vs CIC.
#include <cstdio>

#include "bench_util.hpp"

using namespace tnb;

int main() {
  bench::print_header("Fig. 15: evaluating the components of TnB",
                      "paper Fig. 15");
  const std::vector<base::Scheme> schemes = {
      base::Scheme::kTnB, base::Scheme::kThrive, base::Scheme::kSibling,
      base::Scheme::kCic};
  const double load = bench::load_sweep().back();

  double tnb_sum = 0.0, thrive_sum = 0.0;
  for (const sim::Deployment& dep :
       {sim::indoor_deployment(), sim::outdoor1_deployment(),
        sim::outdoor2_deployment()}) {
    for (unsigned sf : {8u, 10u}) {
      lora::Params p{.sf = sf, .cr = 4, .bandwidth_hz = 125e3, .osf = 8};
      const sim::Trace trace =
          bench::make_deployment_trace(p, dep, load, 1500 + sf);
      const auto detections = bench::detect_once(p, trace);
      std::printf("%-11s SF %-3u (%zu tx):", dep.name.c_str(), sf,
                  trace.packets.size());
      for (base::Scheme s : schemes) {
        const auto r = bench::run_scheme(s, p, trace, false, &detections);
        std::printf("  %s=%zu", base::scheme_name(s).c_str(),
                    r.eval.decoded_unique);
        if (s == base::Scheme::kTnB) tnb_sum += static_cast<double>(r.eval.decoded_unique);
        if (s == base::Scheme::kThrive) thrive_sum += static_cast<double>(r.eval.decoded_unique);
      }
      std::printf("\n");
    }
  }
  std::printf("\nTnB/Thrive ratio (BEC's contribution): %.2fx "
              "(paper: median 1.31x)\n",
              thrive_sum > 0 ? tnb_sum / thrive_sum : 0.0);
  std::printf("(paper: Sibling underperforms in some cases, showing the "
              "value of the peak history)\n");
  return 0;
}
