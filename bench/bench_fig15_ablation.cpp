// Fig. 15: component ablation at the highest load — TnB (Thrive+BEC),
// Thrive (no BEC), Sibling (no history cost), vs CIC.
//
// The six (deployment, SF) cells are independent and fan out across
// `--jobs N` / TNB_JOBS workers; printed numbers are identical for every
// jobs value.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace tnb;

int main(int argc, char** argv) {
  bench::print_header("Fig. 15: evaluating the components of TnB",
                      "paper Fig. 15");
  const int jobs = bench::parse_jobs(argc, argv);
  const std::vector<base::Scheme> schemes = {
      base::Scheme::kTnB,  base::Scheme::kThrive, base::Scheme::kSibling,
      base::Scheme::kCic,  base::Scheme::kCoRa,   base::Scheme::kCoRaTnB};
  const double load = bench::load_sweep().back();
  const std::vector<sim::Deployment> deps = {sim::indoor_deployment(),
                                             sim::outdoor1_deployment(),
                                             sim::outdoor2_deployment()};
  const std::vector<unsigned> sfs = {8u, 10u};

  struct CellResult {
    std::size_t transmitted = 0;
    std::vector<std::size_t> decoded;  ///< per scheme
  };
  const std::size_t n_cells = deps.size() * sfs.size();
  std::vector<CellResult> results(n_cells);
  bench::ObsScope obs;  // receivers below record stage timings into it
  const tnb::obs::HistogramRef cell_seconds = obs.cell_seconds();
  const bench::WallTimer total;
  common::parallel_for(n_cells, jobs, [&](std::size_t i) {
    const sim::Deployment& dep = deps[i / sfs.size()];
    const unsigned sf = sfs[i % sfs.size()];
    const bench::WallTimer timer;
    const lora::Params p{.sf = sf, .cr = 4, .bandwidth_hz = 125e3, .osf = 8};
    const sim::Trace trace =
        bench::make_deployment_trace(p, dep, load, 1500 + sf);
    const auto detections = bench::detect_once(p, trace);
    CellResult& r = results[i];
    r.transmitted = trace.packets.size();
    for (base::Scheme s : schemes) {
      r.decoded.push_back(
          bench::run_scheme(s, p, trace, false, &detections)
              .eval.decoded_unique);
    }
    cell_seconds.observe(timer.seconds());
  });
  const double wall = total.seconds();

  double tnb_sum = 0.0, thrive_sum = 0.0;
  for (std::size_t i = 0; i < n_cells; ++i) {
    const CellResult& r = results[i];
    std::printf("%-11s SF %-3u (%zu tx):", deps[i / sfs.size()].name.c_str(),
                sfs[i % sfs.size()], r.transmitted);
    for (std::size_t si = 0; si < schemes.size(); ++si) {
      std::printf("  %s=%zu", base::scheme_name(schemes[si]).c_str(),
                  r.decoded[si]);
      if (schemes[si] == base::Scheme::kTnB) {
        tnb_sum += static_cast<double>(r.decoded[si]);
      }
      if (schemes[si] == base::Scheme::kThrive) {
        thrive_sum += static_cast<double>(r.decoded[si]);
      }
    }
    std::printf("\n");
  }
  std::printf("\nTnB/Thrive ratio (BEC's contribution): %.2fx "
              "(paper: median 1.31x)\n",
              thrive_sum > 0 ? tnb_sum / thrive_sum : 0.0);
  std::printf("(paper: Sibling underperforms in some cases, showing the "
              "value of the peak history)\n");
  bench::print_obs_summary(obs.registry().snapshot(), n_cells, jobs, wall);
  return 0;
}
