// Fig. 10: CDF of the estimated node SNRs in the three deployments.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"

using namespace tnb;

int main() {
  bench::print_header("Fig. 10: node SNR CDF per deployment", "paper Fig. 10");
  Rng rng(10);
  for (const sim::Deployment& dep :
       {sim::indoor_deployment(), sim::outdoor1_deployment(),
        sim::outdoor2_deployment()}) {
    std::vector<double> snrs;
    // Aggregate several draws for a smooth CDF.
    const int draws = bench::full_mode() ? 40 : 10;
    for (int d = 0; d < draws; ++d) {
      for (const sim::NodeConfig& n : dep.draw_nodes(rng)) {
        snrs.push_back(n.snr_db);
      }
    }
    std::sort(snrs.begin(), snrs.end());
    std::printf("\n%s (%zu nodes/run):\n  SNR(dB):", dep.name.c_str(),
                dep.n_nodes);
    for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
      const std::size_t idx = std::min(
          snrs.size() - 1, static_cast<std::size_t>(q * (snrs.size() - 1)));
      std::printf("  p%-3.0f=%5.1f", q * 100, snrs[idx]);
    }
    std::printf("\n");
  }
  std::printf("\n(paper: >20 dB spread within a deployment; outdoor sites "
              "reach lower SNRs)\n");
  return 0;
}
