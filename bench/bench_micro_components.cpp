// Microbenchmarks of TnB's computational kernels (google-benchmark):
// FFT, signal-vector computation (by-value and workspace kernels), peak
// finding, frac-sync refinement, BEC block decoding, and Thrive's
// per-checking-point assignment.
//
// Invoked by the CI perf-smoke job as
//   bench_micro_components --benchmark_out=BENCH_micro.json
//                          --benchmark_out_format=json
// The custom main() additionally prints one "BENCH <name> <real_ns>" line
// per benchmark, so a summary needs nothing beyond grep (bench/README.md).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "common/rng.hpp"
#include "core/bec.hpp"
#include "core/frac_sync.hpp"
#include "core/thrive.hpp"
#include "dsp/fft.hpp"
#include "dsp/fft_backend.hpp"
#include "dsp/peak_finder.hpp"
#include "lora/chirp.hpp"
#include "lora/demodulator.hpp"
#include "lora/frame.hpp"
#include "lora/hamming.hpp"
#include "lora/modulator.hpp"

using namespace tnb;

namespace {

void BM_Fft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<cfloat> buf(n);
  for (auto& v : buf) v = rng.complex_normal();
  const auto& plan = dsp::fft_plan(n);
  for (auto _ : state) {
    plan.forward(std::span<cfloat>(buf));
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Fft)->Arg(256)->Arg(1024)->Arg(2048)->Arg(8192);

void BM_ForwardBatch(benchmark::State& state) {
  // Batched transforms through the active backend: SF and OSF set the
  // transform size (sps = 2^SF * OSF), the third arg how many rows one
  // forward_batch call executes. batch=1 is the single-transform
  // reference the amortization is measured against.
  const unsigned sf = static_cast<unsigned>(state.range(0));
  const unsigned osf = static_cast<unsigned>(state.range(1));
  const std::size_t batch = static_cast<std::size_t>(state.range(2));
  const std::size_t sps = (std::size_t{1} << sf) * osf;
  Rng rng(7);
  std::vector<cfloat> rows(batch * sps);
  for (auto& v : rows) v = rng.complex_normal();
  const auto& plan = dsp::fft_plan(sps);
  for (auto _ : state) {
    plan.forward_batch(std::span<cfloat>(rows), batch);
    benchmark::DoNotOptimize(rows.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * batch));
}
BENCHMARK(BM_ForwardBatch)
    ->ArgsProduct({{8, 12}, {1, 8}, {1, 8, 64}});

void BM_SignalVector(benchmark::State& state) {
  const unsigned sf = static_cast<unsigned>(state.range(0));
  lora::Params p{.sf = sf, .cr = 4, .bandwidth_hz = 125e3, .osf = 8};
  const lora::Demodulator demod(p);
  const auto sym = lora::make_upchirp(p, 42);
  for (auto _ : state) {
    const SignalVector sv = demod.signal_vector(sym, 1.37);
    benchmark::DoNotOptimize(sv.data());
  }
}
BENCHMARK(BM_SignalVector)->Arg(8)->Arg(10)->Arg(12);

void BM_DechirpWorkspace(benchmark::State& state) {
  // The zero-allocation kernel path: same work as BM_SignalVector but
  // through signal_vector_into with a warm workspace and caller-owned
  // output, i.e. what the receiver's steady-state decode loop runs.
  const unsigned sf = static_cast<unsigned>(state.range(0));
  lora::Params p{.sf = sf, .cr = 4, .bandwidth_hz = 125e3, .osf = 8};
  const lora::Demodulator demod(p);
  lora::Workspace ws(p);
  const auto sym = lora::make_upchirp(p, 42);
  SignalVector sv;
  sv.resize(p.n_bins());
  demod.signal_vector_into(sym, 1.37, /*up=*/true, ws, sv);  // warm up
  for (auto _ : state) {
    demod.signal_vector_into(sym, 1.37, /*up=*/true, ws, sv);
    benchmark::DoNotOptimize(sv.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DechirpWorkspace)->Arg(8)->Arg(10)->Arg(12);

void BM_FracSyncRefine(benchmark::State& state) {
  // Full three-phase refine() on a synthesized packet with fractional
  // delay and CFO — the frac_sync pipeline stage per detection.
  const unsigned sf = static_cast<unsigned>(state.range(0));
  lora::Params p{.sf = sf, .cr = 4, .bandwidth_hz = 125e3, .osf = 8};
  const lora::Modulator mod(p);
  std::vector<std::uint8_t> app(10, 0x3C);
  const auto symbols = lora::make_packet_symbols(p, app);
  const double sps = static_cast<double>(p.sps());
  lora::WaveformOptions w;
  w.frac_delay = 0.37;
  w.cfo_hz = 1700.0;
  const IqBuffer pkt = mod.synthesize(symbols, w);
  IqBuffer trace(pkt.size() + static_cast<std::size_t>(4.0 * sps),
                 cfloat{0.0f, 0.0f});
  const std::size_t off = 2 * p.sps();
  for (std::size_t s = 0; s < pkt.size(); ++s) trace[off + s] = pkt[s];
  const double t0 = static_cast<double>(off);
  const double cfo = std::floor(p.cfo_hz_to_cycles(w.cfo_hz) + 0.5);
  const rx::FracSync fsync(p);
  lora::Workspace ws(p);
  for (auto _ : state) {
    const rx::FracSyncResult r = fsync.refine(trace, t0, cfo, ws);
    benchmark::DoNotOptimize(&r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FracSyncRefine)->Arg(8)->Arg(10)->Arg(12)
    ->Unit(benchmark::kMillisecond);

void BM_PeakFinder(benchmark::State& state) {
  Rng rng(2);
  std::vector<float> sv(1024);
  for (auto& v : sv) v = static_cast<float>(rng.uniform());
  sv[100] = 40.0f;
  sv[500] = 25.0f;
  dsp::PeakFinderOptions opt;
  opt.circular = true;
  opt.sel = 2.0;
  opt.max_peaks = 16;
  for (auto _ : state) {
    const auto peaks = dsp::find_peaks(sv, opt);
    benchmark::DoNotOptimize(peaks.data());
  }
}
BENCHMARK(BM_PeakFinder);

void BM_BecDecodeBlock(benchmark::State& state) {
  const unsigned cr = static_cast<unsigned>(state.range(0));
  Rng rng(3);
  const rx::Bec bec(8, cr);
  std::vector<std::uint8_t> rows(8);
  for (auto& r : rows) r = lora::codewords(cr)[rng.uniform_index(16)];
  rows[2] ^= 0x11;  // corrupt two columns in one row
  rows[5] ^= 0x03;
  for (auto _ : state) {
    const auto cands = bec.decode_block(rows);
    benchmark::DoNotOptimize(cands.data());
  }
}
BENCHMARK(BM_BecDecodeBlock)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_BecDecodePayload(benchmark::State& state) {
  lora::Params p{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 8};
  Rng rng(4);
  std::vector<std::uint8_t> app(14, 0x5A);
  const auto payload = lora::assemble_payload(app);
  auto symbols = lora::encode_payload_symbols(p, payload);
  symbols[1] ^= 0x5;
  symbols[9] ^= 0x81;
  for (auto _ : state) {
    Rng r(5);
    const auto result = rx::decode_payload_bec(p, symbols, payload.size(), r);
    benchmark::DoNotOptimize(&result);
  }
}
BENCHMARK(BM_BecDecodePayload);

void BM_ThriveAssign(benchmark::State& state) {
  // Two colliding packets, one checking point.
  const int m = static_cast<int>(state.range(0));
  lora::Params p{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
  Rng rng(6);
  const lora::Modulator mod(p);
  std::vector<std::uint8_t> app(14, 0x77);
  const auto symbols = lora::make_packet_symbols(p, app);
  const std::size_t pkt_len = mod.packet_samples(symbols.size());
  IqBuffer trace(pkt_len + static_cast<std::size_t>((3 + m) * static_cast<int>(p.sps())),
                 cfloat{0.0f, 0.0f});
  std::vector<rx::PacketContext> ctxs;
  for (int i = 0; i < m; ++i) {
    lora::WaveformOptions w;
    w.cfo_hz = -3000.0 + 1100.0 * i;
    const IqBuffer pkt = mod.synthesize(symbols, w);
    const double t0 = (2.0 + 0.37 * i) * static_cast<double>(p.sps());
    for (std::size_t s = 0;
         s < pkt.size() && static_cast<std::size_t>(t0) + s < trace.size(); ++s) {
      trace[static_cast<std::size_t>(t0) + s] += pkt[s];
    }
    ctxs.emplace_back(p, rx::DetectedPacket{t0, p.cfo_hz_to_cycles(w.cfo_hz), 0, 12});
    ctxs.back().n_data_symbols = static_cast<int>(symbols.size());
  }
  rx::SigCalc sig(p, {trace});
  std::vector<rx::PeakHistory> hist(ctxs.size());
  rx::Thrive thrive(p);

  const double c = 20.0 * static_cast<double>(p.sps());
  std::vector<rx::ActiveSymbol> act;
  for (int i = 0; i < m; ++i) {
    const auto d = ctxs[static_cast<std::size_t>(i)].data_symbol_at(
        c, ctxs[static_cast<std::size_t>(i)].n_data_symbols);
    if (d) {
      act.push_back({i, *d, ctxs[static_cast<std::size_t>(i)].data_symbol_start(*d)});
    }
  }
  std::vector<std::vector<double>> masks(act.size());
  for (auto _ : state) {
    rx::AssignInput in;
    in.symbols = act;
    in.contexts = ctxs;
    in.masked_bins = masks;
    in.sig = &sig;
    in.history = hist;
    const auto res = thrive.assign(in);
    benchmark::DoNotOptimize(res.data());
  }
}
BENCHMARK(BM_ThriveAssign)->Arg(2)->Arg(4)->Arg(8);

/// Console reporter that also emits one machine-greppable
/// "BENCH <name> <real_ns>" line per measurement, so CI (and humans) can
/// summarize a run with `grep '^BENCH '` — no JSON tooling required. The
/// full-fidelity record still goes to --benchmark_out (JSON).
class GreppableReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    benchmark::ConsoleReporter::ReportRuns(report);
    for (const Run& run : report) {
      if (run.error_occurred) continue;
      const double ns =
          run.real_accumulated_time / static_cast<double>(run.iterations) * 1e9;
      std::printf("BENCH %s %.0f\n", run.benchmark_name().c_str(), ns);
    }
  }
};

/// Registers one BM_FftBackend_<name>/<size> benchmark per backend the
/// build and this CPU provide, each invoking that backend directly
/// (independent of the active selection) so one run compares them all.
void register_backend_benches() {
  for (const dsp::FftBackend* be : dsp::fft_backends()) {
    for (const std::size_t n : {256u, 8192u, 32768u}) {
      const std::string name =
          "BM_FftBackend_" + std::string(be->name()) + "/" + std::to_string(n);
      benchmark::RegisterBenchmark(
          name.c_str(), [be, n](benchmark::State& state) {
            Rng rng(1);
            std::vector<cfloat> buf(n);
            for (auto& v : buf) v = rng.complex_normal();
            const auto& plan = dsp::fft_plan(n);
            for (auto _ : state) {
              be->transform(plan, buf.data(), /*inverse=*/false);
              benchmark::DoNotOptimize(buf.data());
            }
            state.SetItemsProcessed(
                static_cast<std::int64_t>(state.iterations()));
          });
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // --fft-backend NAME (consumed before benchmark::Initialize) selects
  // the backend the kernel/pipeline benchmarks dispatch to; the
  // BM_FftBackend_* comparisons always cover every available backend.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fft-backend") == 0 && i + 1 < argc) {
      if (!dsp::set_fft_backend(argv[i + 1])) {
        std::fprintf(stderr,
                     "bench_micro_components: unknown fft backend '%s' "
                     "(valid: %s)\n",
                     argv[i + 1], dsp::fft_backend_names().c_str());
        return 2;
      }
      for (int j = i; j + 2 <= argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      --i;
    }
  }
  register_backend_benches();
  // Initialize consumes the standard flags, including --benchmark_out /
  // --benchmark_out_format; RunSpecifiedBenchmarks builds the file
  // reporter from them while our display reporter adds the BENCH lines.
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // The selection lands in the JSON context and in one greppable line, so
  // BENCH numbers are never compared across backends by accident.
  benchmark::AddCustomContext("fft_backend", dsp::active_fft_backend().name());
  std::printf("BENCH_CONTEXT fft_backend %s\n",
              dsp::active_fft_backend().name());
  GreppableReporter display;
  benchmark::RunSpecifiedBenchmarks(&display);
  benchmark::Shutdown();
  return 0;
}
