// Fig. 18: collision levels of the packets TnB decodes — how many
// concurrent packets a decoded packet had to survive.
#include <cstdio>

#include "bench_util.hpp"

using namespace tnb;

int main() {
  bench::print_header("Fig. 18: collision levels of packets decoded by TnB",
                      "paper Fig. 18");
  const double load = bench::load_sweep().back();
  const std::size_t max_level = 6;

  for (unsigned sf : {8u, 10u}) {
    std::vector<std::size_t> hist(max_level + 1, 0);
    std::size_t total = 0;
    for (const sim::Deployment& dep :
         {sim::indoor_deployment(), sim::outdoor1_deployment(),
          sim::outdoor2_deployment()}) {
      lora::Params p{.sf = sf, .cr = 4, .bandwidth_hz = 125e3, .osf = 8};
      const sim::Trace trace =
          bench::make_deployment_trace(p, dep, load, 1800 + sf);
      rx::Receiver receiver = base::make_receiver(base::Scheme::kTnB, p);
      Rng rng(1);
      const auto decoded = receiver.decode(trace.iq, rng);
      const auto h = sim::collision_level_histogram(trace, decoded, max_level);
      for (std::size_t i = 0; i < h.size(); ++i) {
        hist[i] += h[i];
        total += h[i];
      }
    }
    std::printf("\nSF %u (%zu decoded packets):\n", sf, total);
    for (std::size_t lvl = 0; lvl <= max_level; ++lvl) {
      const double pct =
          total == 0 ? 0.0
                     : 100.0 * static_cast<double>(hist[lvl]) /
                           static_cast<double>(total);
      std::printf("  level %zu%s: %5.1f%%  ", lvl,
                  lvl == max_level ? "+" : " ", pct);
      for (int b = 0; b < static_cast<int>(pct / 2); ++b) std::printf("#");
      std::printf("\n");
    }
  }
  std::printf("\n(paper: <15%% of decoded SF8 packets were collision-free; "
              "most decoded SF10 packets collided with 4+ packets)\n");
  return 0;
}
