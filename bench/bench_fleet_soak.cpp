// bench_fleet_soak — multi-channel gateway fleet throughput and memory
// soak (DESIGN.md "Gateway fleet").
//
// Builds an 8-channel wideband composite, decodes it twice and compares:
//   stream_sps  one worker, channel at a time: channelize, then run each
//               channel through a standalone StreamingReceiver
//               sequentially — the single-gateway baseline.
//   fleet_sps   tnb::fleet with --jobs workers driving all lanes through
//               the two-thread wideband pipeline.
// Both rates are wideband samples per wall-clock second over the same
// composite, so fleet_sps / stream_sps is the fleet's parallel speedup.
// The fleet run also reports its resident-IQ high water against the
// documented backpressure ceiling and cross-checks the ledger against the
// baseline's packets (any disagreement prints agree=no and exits 1).
//
// TNB_BENCH_FULL=1 lengthens the composite (10 s per channel vs 2 s);
// TNB_FLEET_BENCH_SECONDS overrides the duration outright.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.hpp"
#include "fleet/channelizer.hpp"
#include "fleet/fleet.hpp"
#include "stream/chunk_source.hpp"
#include "stream/ring_buffer.hpp"
#include "stream/streaming_receiver.hpp"

namespace tnb {
namespace {

std::vector<std::vector<std::uint8_t>> payload_multiset(
    std::vector<std::vector<std::uint8_t>> payloads) {
  std::sort(payloads.begin(), payloads.end());
  return payloads;
}

double bench_seconds() {
  const char* env = std::getenv("TNB_FLEET_BENCH_SECONDS");
  if (env != nullptr) return std::max(0.5, std::atof(env));
  return bench::full_mode() ? 10.0 : 2.0;
}

}  // namespace
}  // namespace tnb

int main(int argc, char** argv) {
  using namespace tnb;

  const int jobs = bench::parse_jobs(argc, argv);
  const unsigned n_channels = 8;
  const lora::Params params{.sf = 8, .cr = 4, .bandwidth_hz = 125e3,
                            .osf = 2};
  const double duration = bench_seconds();

  bench::print_header("Gateway fleet soak: N-channel composite throughput",
                      "tnb::fleet headline claim");
  std::printf("channels=%u sf=%u osf=%u duration=%.1fs jobs=%d\n", n_channels,
              params.sf, params.osf, duration, jobs);

  Rng rng(404);
  sim::TraceOptions topt;
  topt.duration_s = duration;
  topt.load_pps = 8.0;
  topt.nodes = {{1, 20.0, 900.0},  {2, 16.0, -1800.0},
                {3, 13.0, 2600.0}, {4, 10.0, -400.0}};
  const auto traces =
      sim::build_multichannel_traces(params, topt, n_channels, rng);
  std::vector<IqBuffer> per_channel;
  per_channel.reserve(n_channels);
  for (const auto& t : traces) per_channel.push_back(t.iq);
  const IqBuffer wideband = fleet::mix_channels(per_channel, n_channels);
  std::printf("wideband_samples=%zu\n", wideband.size());

  stream::StreamingOptions sopt;
  sopt.window_symbols = 512;
  sopt.rng_seed = 1;
  const std::size_t chunk = 16 * params.sps();

  // Baseline: channelize + one StreamingReceiver per channel, all on this
  // thread.
  std::vector<std::vector<std::uint8_t>> base_payloads;
  bench::WallTimer base_timer;
  {
    fleet::Channelizer chan({.n_channels = n_channels, .taps = 1});
    std::vector<IqBuffer> channelized(n_channels);
    chan.push(wideband, channelized);
    for (unsigned c = 0; c < n_channels; ++c) {
      stream::StreamingReceiver rx(params, {}, sopt);
      for (std::size_t pos = 0; pos < channelized[c].size(); pos += chunk) {
        rx.push_chunk(std::span<const cfloat>(channelized[c]).subspan(
            pos, std::min(chunk, channelized[c].size() - pos)));
      }
      rx.finish();
      for (const auto& pkt : rx.packets()) base_payloads.push_back(pkt.payload);
    }
  }
  const double base_s = base_timer.seconds();

  // Fleet: the full two-thread wideband pipeline with `jobs` lane workers.
  fleet::FleetOptions fopt;
  fopt.n_channels = n_channels;
  fopt.sfs = {params.sf};
  fopt.lanes = jobs;
  fopt.stream = sopt;
  fleet::Fleet fleet(params, fopt);
  bench::WallTimer fleet_timer;
  {
    stream::BufferSource src(wideband);
    stream::IqRing ring(1 << 18);
    fleet::run_fleet_pipeline(src, ring, fleet, chunk * n_channels);
  }
  const double fleet_s = fleet_timer.seconds();

  std::vector<std::vector<std::uint8_t>> fleet_payloads;
  for (const auto& e : fleet.ledger()) fleet_payloads.push_back(e.pkt.payload);
  const bool agree = payload_multiset(std::move(base_payloads)) ==
                     payload_multiset(std::move(fleet_payloads));

  const fleet::FleetStats st = fleet.stats();
  const double sps = static_cast<double>(wideband.size());
  std::printf("packets=%zu steals=%zu agree=%s\n", st.packets, st.steals,
              agree ? "yes" : "no");
  std::printf("resident_iq_high_water=%zu resident_iq_bound=%zu bounded=%s\n",
              st.resident_iq_high_water, st.resident_iq_bound,
              st.resident_iq_high_water <= st.resident_iq_bound ? "yes" : "no");
  std::printf("stream_sps=%.0f fleet_sps=%.0f speedup=%.2fx\n",
              base_s > 0.0 ? sps / base_s : 0.0,
              fleet_s > 0.0 ? sps / fleet_s : 0.0,
              fleet_s > 0.0 ? base_s / fleet_s : 0.0);
  return agree && st.resident_iq_high_water <= st.resident_iq_bound ? 0 : 1;
}
