// Table 2: BEC repair complexity — which repair method runs how many times
// and how many packet-level CRC checks are spent, per CR and number of
// error columns.
#include <cstdio>
#include <set>

#include "bench_util.hpp"
#include "core/bec.hpp"
#include "lora/frame.hpp"
#include "lora/hamming.hpp"

using namespace tnb;

int main() {
  bench::print_header("Table 2: Summary of BEC (repair method counts)",
                      "paper Table 2");
  const unsigned sf = 8;
  const int trials = bench::full_mode() ? 5000 : 1000;
  Rng rng(2);

  std::printf("%-4s %-10s %-8s %-8s %-8s %-8s %-10s\n", "CR", "#errcols",
              "D'", "D1", "D2", "D3", "cands");
  struct Row {
    unsigned cr, ncols;
    const char* paper;
  };
  const Row rows[] = {
      {1, 1, "5 D',  5 CRC"},   {2, 1, "2 D1,  2 CRC"},
      {3, 2, "3 D1,  3 CRC"},   {4, 2, "<=4 D3, <=4 CRC"},
      {4, 3, "<=9 D1, 4 CRC"},
  };
  for (const Row& row : rows) {
    rx::BecStats total;
    const rx::Bec bec(sf, row.cr);
    for (int t = 0; t < trials; ++t) {
      std::vector<std::uint8_t> truth(sf);
      for (auto& r : truth) r = lora::codewords(row.cr)[rng.uniform_index(16)];
      std::set<unsigned> cols;
      while (cols.size() < row.ncols) {
        cols.insert(static_cast<unsigned>(rng.uniform_index(4 + row.cr)));
      }
      std::vector<std::uint8_t> received = truth;
      for (unsigned c : cols) {
        bool any = false;
        while (!any) {
          for (std::size_t r = 0; r < received.size(); ++r) {
            received[r] = static_cast<std::uint8_t>(received[r] & ~(1u << c));
            const unsigned orig = (truth[r] >> c) & 1u;
            const unsigned bit = rng.uniform() < 0.5 ? orig ^ 1u : orig;
            received[r] |= static_cast<std::uint8_t>(bit << c);
            if (bit != orig) any = true;
          }
        }
      }
      bec.decode_block(received, &total);
    }
    const double n = static_cast<double>(trials);
    std::printf("%-4u %-10u %-8.2f %-8.2f %-8.2f %-8.2f %-10.2f  (paper: %s)\n",
                row.cr, row.ncols, total.delta_prime / n, total.delta1 / n,
                total.delta2 / n, total.delta3 / n,
                total.candidate_blocks / n, row.paper);
  }
  std::printf("\n(mean per corrupted block over %d trials at SF %u; 'cands' "
              "bounds the per-block CRC checks)\n",
              trials, sf);
  return 0;
}
