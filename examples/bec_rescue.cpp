// BEC walkthrough: corrupts symbols of a code block beyond the default
// Hamming decoder's capability and shows BEC repairing them — the worked
// example of the paper's Figs. 2 and 7, on a random block.
//
//   ./examples/bec_rescue [sf] [cr]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/rng.hpp"
#include "core/bec.hpp"
#include "lora/hamming.hpp"

namespace {

void print_block(const char* title, std::span<const std::uint8_t> rows,
                 unsigned cols) {
  std::printf("%s\n", title);
  std::printf("      ");
  for (unsigned c = 1; c <= cols; ++c) std::printf("c%-2u", c);
  std::printf("\n");
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::printf("  r%-2zu ", r + 1);
    for (unsigned c = 0; c < cols; ++c) {
      std::printf(" %u ", (rows[r] >> c) & 1u);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tnb;

  const unsigned sf = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const unsigned cr = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 3;
  const unsigned cols = 4 + cr;

  Rng rng(7);
  std::vector<std::uint8_t> truth(sf);
  for (auto& r : truth) r = lora::codewords(cr)[rng.uniform_index(16)];
  print_block("Transmitted block (each row a codeword):", truth, cols);

  // Corrupt two columns — two garbled symbols on the air. With CR 3 this
  // exceeds the default decoder's 1-bit-per-row guarantee whenever a row is
  // hit twice.
  std::vector<std::uint8_t> received = truth;
  const unsigned victims[2] = {1, static_cast<unsigned>(cols - 1)};
  for (unsigned c : victims) {
    bool any = false;
    while (!any) {
      for (auto& row : received) {
        if (rng.uniform() < 0.5) {
          row ^= static_cast<std::uint8_t>(1u << c);
          any = true;
        }
      }
    }
  }
  std::printf("\nCorrupted symbols (columns) %u and %u.\n\n", victims[0] + 1,
              victims[1] + 1);
  print_block("Received block:", received, cols);

  // Default decoder: per-row nearest codeword.
  std::vector<std::uint8_t> cleaned(sf);
  unsigned default_errors = 0;
  for (unsigned r = 0; r < sf; ++r) {
    cleaned[r] = lora::default_decode(received[r], cr).codeword;
    if (cleaned[r] != truth[r]) ++default_errors;
  }
  std::printf("\n");
  print_block("Default decoder's cleaned block:", cleaned, cols);
  std::printf("\nDefault decoder got %u of %u rows wrong.\n\n", default_errors,
              sf);

  // BEC: joint block decode.
  const rx::Bec bec(sf, cr);
  rx::BecStats stats;
  const auto candidates = bec.decode_block(received, &stats);
  std::printf("BEC produced %zu candidate blocks "
              "(%zu Delta_1, %zu Delta_2, %zu Delta_3 repairs).\n",
              candidates.size(), stats.delta1, stats.delta2, stats.delta3);
  bool rescued = false;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i] == truth) {
      std::printf("Candidate %zu matches the transmitted block exactly — "
                  "the packet CRC would select it.\n",
                  i);
      rescued = true;
    }
  }
  if (!rescued) {
    std::printf("BEC did not recover this block (probability ~2^-SF for "
                "CR 3 two-column errors).\n");
  }
  return rescued ? 0 : 1;
}
