// Gateway-scale demo: synthesize a full deployment trace (one of the
// paper's three testbeds), decode it through the streaming gateway
// pipeline — chunked ingestion over the SPSC ring into the
// StreamingReceiver, exactly the tnb_streamd data path — and print the
// per-node report the paper's artifact produces: sequence numbers,
// estimated SNR, packet start time, and CFO. Pass `oneshot` as the last
// argument to decode the whole in-memory trace with the offline Receiver
// instead; the decoded packet set is identical (see DESIGN.md "Streaming
// gateway").
//
//   ./examples/gateway_trace [indoor|outdoor1|outdoor2] [sf] [load_pps] [oneshot]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "common/rng.hpp"
#include "core/receiver.hpp"
#include "sim/deployment.hpp"
#include "sim/metrics.hpp"
#include "sim/trace_builder.hpp"
#include "stream/streaming_receiver.hpp"

int main(int argc, char** argv) {
  using namespace tnb;

  sim::Deployment dep = sim::indoor_deployment();
  if (argc > 1 && std::strcmp(argv[1], "outdoor1") == 0) {
    dep = sim::outdoor1_deployment();
  } else if (argc > 1 && std::strcmp(argv[1], "outdoor2") == 0) {
    dep = sim::outdoor2_deployment();
  }
  const unsigned sf = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
  const double load = argc > 3 ? std::atof(argv[3]) : 10.0;
  const bool oneshot = argc > 4 && std::strcmp(argv[4], "oneshot") == 0;

  lora::Params params{.sf = sf, .cr = 4, .bandwidth_hz = 125e3, .osf = 8};
  Rng rng(99);
  sim::TraceOptions opt;
  opt.duration_s = 2.0;
  opt.load_pps = load;
  opt.nodes = dep.draw_nodes(rng);
  const sim::Trace trace = sim::build_trace(params, opt, rng);
  std::printf("Deployment %s: %zu nodes, SF%u, %.0f pkt/s offered, %.1f s.\n",
              dep.name.c_str(), dep.n_nodes, sf, load, opt.duration_s);

  std::vector<sim::DecodedPacket> decoded;
  if (oneshot) {
    rx::Receiver receiver(params);
    Rng rx_rng(1);
    decoded = receiver.decode(trace.iq, rx_rng);
    std::printf("— TnB decoded %zu pkts (one-shot) —\n\n", decoded.size());
  } else {
    // The live-pipeline path: replay the trace chunk by chunk through the
    // ring buffer into the StreamingReceiver, as tnb_streamd would.
    stream::StreamingOptions sopt;
    sopt.rng_seed = 1;
    stream::StreamingReceiver receiver(params, {}, sopt);
    stream::BufferSource source(trace.iq);
    const std::size_t chunk = 16 * params.sps();
    stream::IqRing ring(8 * chunk);
    stream::run_pipeline(source, ring, receiver, chunk);
    decoded = receiver.packets();
    std::printf("— TnB decoded %zu pkts (streaming) —\n", decoded.size());
    std::printf("stream %s\n\n", receiver.stats().to_json().c_str());
  }

  // Per-node report, artifact style.
  std::map<std::uint16_t, double> node_snr;
  for (const auto& rec : trace.packets) node_snr[rec.node_id] = rec.snr_db;
  std::map<std::uint16_t, std::vector<const sim::DecodedPacket*>> by_node;
  for (const auto& pkt : decoded) {
    std::uint16_t node = 0, seq = 0;
    if (sim::parse_app_payload(pkt.payload, node, seq)) {
      by_node[node].push_back(&pkt);
    }
  }
  const auto prr = sim::per_node_prr(trace, decoded);
  for (const auto& [node, pkts] : by_node) {
    double est_snr = 0.0;
    for (const auto* pkt : pkts) est_snr += pkt->snr_db;
    est_snr /= static_cast<double>(pkts.size());
    std::printf("node %2u (SNR true %5.1f / est %5.1f dB, CFO est %6.0f Hz, "
                "PRR %.2f):",
                node, node_snr[node], est_snr, pkts[0]->cfo_hz, prr.at(node));
    for (const auto* pkt : pkts) {
      std::uint16_t n = 0, seq = 0;
      sim::parse_app_payload(pkt->payload, n, seq);
      std::printf(" seq %u @ %.2fs", seq,
                  pkt->start_sample / params.sample_rate_hz());
    }
    std::printf("\n");
  }

  const auto result = sim::evaluate(trace, decoded);
  std::printf("\ntotal: %zu/%zu decoded (PRR %.2f)\n", result.decoded_unique,
              result.transmitted, result.prr);
  return 0;
}
