// Decode a trace file in the paper artifact's format (interleaved int16 IQ
// at OSF x BW) — the C++ counterpart of the artifact's TnBMain.m.
//
//   ./examples/decode_file <trace.bin> [sf] [osf]
//
// With no arguments, synthesizes a small collided trace, writes it to a
// temporary file, and decodes it back — a self-contained round trip.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/rng.hpp"
#include "core/receiver.hpp"
#include "sim/deployment.hpp"
#include "sim/metrics.hpp"
#include "sim/trace_builder.hpp"
#include "sim/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace tnb;

  std::string path;
  unsigned sf = 8, osf = 8;
  if (argc > 1) {
    path = argv[1];
    if (argc > 2) sf = std::strtoul(argv[2], nullptr, 10);
    if (argc > 3) osf = std::strtoul(argv[3], nullptr, 10);
  } else {
    // Self-contained demo: build, export, and re-import a trace.
    path = "/tmp/tnb_demo_trace.bin";
    lora::Params p{.sf = sf, .cr = 4, .bandwidth_hz = 125e3, .osf = osf};
    Rng rng(3);
    sim::Deployment dep = sim::indoor_deployment();
    dep.n_nodes = 5;
    sim::TraceOptions opt;
    opt.duration_s = 1.5;
    opt.load_pps = 8.0;
    opt.nodes = dep.draw_nodes(rng);
    const sim::Trace trace = sim::build_trace(p, opt, rng);
    sim::write_trace_i16(path, trace.iq);
    std::printf("No trace given; wrote a demo trace with %zu packets to %s\n",
                trace.packets.size(), path.c_str());
  }

  lora::Params params{.sf = sf, .cr = 4, .bandwidth_hz = 125e3, .osf = osf};
  const IqBuffer iq = sim::read_trace_i16(path);
  std::printf("Read %zu samples (%.2f s at %.0f sps); decoding with SF %u...\n",
              iq.size(), iq.size() / params.sample_rate_hz(),
              params.sample_rate_hz(), sf);

  rx::Receiver receiver(params);
  Rng rng(1);
  rx::ReceiverStats stats;
  const auto decoded = receiver.decode(iq, rng, &stats);
  std::printf("— TnB decoded %zu pkts —\n", decoded.size());
  for (const auto& pkt : decoded) {
    std::uint16_t node = 0, seq = 0;
    if (sim::parse_app_payload(pkt.payload, node, seq)) {
      std::printf("  node %u seq %u @ %.3f s\n", node, seq,
                  pkt.start_sample / params.sample_rate_hz());
    } else {
      std::printf("  (non-simulator payload, %zu bytes) @ %.3f s\n",
                  pkt.payload.size(),
                  pkt.start_sample / params.sample_rate_hz());
    }
  }
  return 0;
}
