// Quickstart: modulate one LoRa packet, push it through an AWGN channel,
// and decode it with the TnB receiver.
//
//   ./examples/quickstart [snr_db]
//
// Demonstrates the minimal TnB API surface: lora::Params, the simulator's
// trace builder, and rx::Receiver.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/rng.hpp"
#include "core/receiver.hpp"
#include "sim/metrics.hpp"
#include "sim/trace_builder.hpp"

int main(int argc, char** argv) {
  using namespace tnb;

  const double snr_db = argc > 1 ? std::atof(argv[1]) : 10.0;

  // SF8 / CR4 / 125 kHz, 8x oversampled: the paper's experimental setup.
  lora::Params params{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 8};

  // One node sending a handful of packets at random times.
  Rng rng(42);
  sim::TraceOptions opt;
  opt.duration_s = 2.0;
  opt.load_pps = 3.0;
  opt.nodes = {{.id = 1, .snr_db = snr_db, .cfo_hz = 1700.0}};
  const sim::Trace trace = sim::build_trace(params, opt, rng);
  std::printf("Synthesized %.1f s of IQ (%zu samples) with %zu packets at "
              "SNR %.1f dB.\n",
              opt.duration_s, trace.iq.size(), trace.packets.size(), snr_db);

  // Decode with the full TnB receiver (Thrive + BEC, two passes).
  rx::Receiver receiver(params);
  Rng rx_rng(7);
  rx::ReceiverStats stats;
  const auto decoded = receiver.decode(trace.iq, rx_rng, &stats);

  std::printf("Detected %zu preambles, decoded %zu packets "
              "(%zu on the second pass).\n",
              stats.detected, decoded.size(), stats.decoded_second_pass);
  for (const auto& pkt : decoded) {
    std::uint16_t node = 0, seq = 0;
    sim::parse_app_payload(pkt.payload, node, seq);
    std::string hex;
    for (std::uint8_t b : pkt.payload) {
      char buf[4];
      std::snprintf(buf, sizeof buf, "%02x", b);
      hex += buf;
    }
    std::printf("  node %u seq %u @ sample %.0f payload %s\n", node, seq,
                pkt.start_sample, hex.c_str());
  }

  const auto result = sim::evaluate(trace, decoded);
  std::printf("PRR: %zu/%zu = %.2f\n", result.decoded_unique,
              result.transmitted, result.prr);
  return result.decoded_unique == result.transmitted ? 0 : 1;
}
