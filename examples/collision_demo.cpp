// Collision resolution demo: several nodes transmit concurrently and the
// same trace is decoded by every scheme from the paper's evaluation
// (TnB, Thrive, Sibling, CIC, AlignTrack*, LoRaPHY...).
//
//   ./examples/collision_demo [load_pps] [n_nodes]
//
// Reproduces, in miniature, the experiment behind the paper's Figs. 12-14.
#include <cstdio>
#include <cstdlib>

#include "baselines/factories.hpp"
#include "baselines/sic.hpp"
#include "common/rng.hpp"
#include "sim/deployment.hpp"
#include "sim/metrics.hpp"
#include "sim/trace_builder.hpp"

int main(int argc, char** argv) {
  using namespace tnb;

  const double load = argc > 1 ? std::atof(argv[1]) : 12.0;
  const std::size_t n_nodes = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 6;

  lora::Params params{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 8};

  sim::Deployment dep = sim::indoor_deployment();
  dep.n_nodes = n_nodes;
  Rng rng(2024);
  sim::TraceOptions opt;
  opt.duration_s = 2.0;
  opt.load_pps = load;
  opt.nodes = dep.draw_nodes(rng);
  const sim::Trace trace = sim::build_trace(params, opt, rng);

  // How collided is the medium?
  int max_level = 0;
  for (std::size_t i = 0; i < trace.packets.size(); ++i) {
    max_level = std::max(max_level, sim::collision_level(trace, i));
  }
  std::printf("%zu packets from %zu nodes at %.0f pkt/s; worst collision "
              "level %d.\n\n",
              trace.packets.size(), n_nodes, load, max_level);

  std::printf("%-14s %10s %8s %8s\n", "scheme", "decoded", "PRR", "false");
  for (base::Scheme s : base::all_schemes()) {
    rx::Receiver receiver = base::make_receiver(s, params);
    Rng rx_rng(7);
    const auto decoded = receiver.decode(trace.iq, rx_rng);
    const auto result = sim::evaluate(trace, decoded);
    std::printf("%-14s %6zu/%-3zu %8.2f %8zu\n",
                base::scheme_name(s).c_str(), result.decoded_unique,
                result.transmitted, result.prr, result.false_packets);
  }
  {
    // Extension baseline: mLoRa-style successive cancellation.
    base::SicDecoder sic(params);
    Rng rx_rng(7);
    const auto result = sim::evaluate(trace, sic.decode(trace.iq, rx_rng));
    std::printf("%-14s %6zu/%-3zu %8.2f %8zu\n", "SIC (ext)",
                result.decoded_unique, result.transmitted, result.prr,
                result.false_packets);
  }
  return 0;
}
